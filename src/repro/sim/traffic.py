"""Synthetic traffic generation.

Standard interconnection-network workloads: uniform random, transpose,
bit-complement, bit-reverse, hotspot, nearest-neighbour and fixed
random permutations.  Injection is a Bernoulli process per node with a
given offered load in flits/node/cycle; message lengths are fixed or
drawn from a small range (wormhole-switched worms).

Two patterns modify the *injection process* rather than the
destination map: ``bursty`` gates each node's Bernoulli injection
through a two-state on/off Markov chain (same mean offered load,
delivered in bursts), and ``trace_replay`` ignores the stochastic
model entirely and replays an explicit (cycle, src, dst[, length])
schedule from ``pattern_kwargs["trace"]``.

All randomness flows through one :class:`numpy.random.Generator` so
every experiment is reproducible from a seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from .topology import Hypercube, Mesh2D, Topology

PatternFn = Callable[[int], int]


def uniform_pattern(topology: Topology, rng: np.random.Generator) -> PatternFn:
    n = topology.n_nodes

    def dest(src: int) -> int:
        d = int(rng.integers(0, n - 1))
        return d if d < src else d + 1  # uniform over others

    def dest_batch(srcs: list[int]) -> list[int]:
        # numpy's bounded-integer generation is element-sequential, so
        # one sized draw consumes the bit stream exactly like len(srcs)
        # scalar calls — the RNG stream (and every pinned digest) is
        # unchanged; the per-call Generator overhead is paid once
        ds = rng.integers(0, n - 1, size=len(srcs)).tolist()
        return [d if d < s else d + 1 for d, s in zip(ds, srcs)]

    dest.batch = dest_batch
    return dest


def transpose_pattern(topology: Topology) -> PatternFn:
    if not isinstance(topology, Mesh2D):
        raise ValueError("transpose needs a 2-D mesh/torus")
    if topology.width != topology.height:
        raise ValueError("transpose needs a square mesh")

    def dest(src: int) -> int:
        x, y = topology.coords(src)
        return topology.node_at(y, x)

    return dest


def bit_complement_pattern(topology: Topology) -> PatternFn:
    n = topology.n_nodes
    if n & (n - 1):
        raise ValueError("bit-complement needs a power-of-two node count")
    mask = n - 1

    def dest(src: int) -> int:
        return src ^ mask

    return dest


def bit_reverse_pattern(topology: Topology) -> PatternFn:
    n = topology.n_nodes
    if n & (n - 1):
        raise ValueError("bit-reverse needs a power-of-two node count")
    bits = (n - 1).bit_length()

    def dest(src: int) -> int:
        out = 0
        for i in range(bits):
            if src >> i & 1:
                out |= 1 << (bits - 1 - i)
        return out

    return dest


def hotspot_pattern(topology: Topology, rng: np.random.Generator,
                    hotspot: int | None = None,
                    fraction: float = 0.2) -> PatternFn:
    """Uniform traffic with an extra ``fraction`` directed at one node."""
    n = topology.n_nodes
    if hotspot is None:
        hotspot = n // 2
    uni = uniform_pattern(topology, rng)
    spot = int(hotspot)

    def dest(src: int) -> int:
        if src != spot and rng.random() < fraction:
            return spot
        d = uni(src)
        return d

    return dest


def neighbor_pattern(topology: Topology, rng: np.random.Generator) -> PatternFn:
    def dest(src: int) -> int:
        nbrs = topology.neighbors(src)
        return nbrs[int(rng.integers(0, len(nbrs)))]

    return dest


def permutation_pattern(topology: Topology,
                        rng: np.random.Generator) -> PatternFn:
    """A fixed random permutation without fixed points (derangement by
    rejection; retries are cheap at these sizes)."""
    n = topology.n_nodes
    while True:
        perm = rng.permutation(n)
        if not np.any(perm == np.arange(n)):
            break
    table = [int(x) for x in perm]

    def dest(src: int) -> int:
        return table[src]

    return dest


def dimension_reverse_pattern(topology: Topology) -> PatternFn:
    """Hypercube 'dimension reversal': destination = src with the low
    and high halves of the address swapped."""
    if not isinstance(topology, Hypercube):
        raise ValueError("dimension-reverse needs a hypercube")
    d = topology.dimension
    half = d // 2
    low = (1 << half) - 1

    def dest(src: int) -> int:
        lo = src & low
        hi = src >> half
        return (lo << (d - half)) | hi

    return dest


def bursty_pattern(topology: Topology, rng: np.random.Generator,
                   base: str = "uniform", duty: float = 0.3,
                   burst_len: int = 24, **kw) -> PatternFn:
    """Destination side of the bursty workload: delegate to ``base``.
    The on/off Markov gating is an injection-process concern handled by
    :class:`TrafficGenerator` (``duty``/``burst_len`` are consumed
    there; accepted here so one kwargs dict serves both sides)."""
    if base in ("bursty", "trace_replay"):
        raise ValueError(f"bursty cannot stack on {base!r}")
    return PATTERNS[base](topology, rng, **kw)


def trace_replay_schedule(trace, default_length: int
                          ) -> dict[int, list[tuple[int, int, int]]]:
    """Normalize a trace — (cycle, src, dst[, length]) entries, tuples
    or JSON lists — into a per-cycle injection schedule."""
    sched: dict[int, list[tuple[int, int, int]]] = {}
    for i, entry in enumerate(trace):
        entry = list(entry)
        if len(entry) == 3:
            entry.append(default_length)
        if len(entry) != 4:
            raise ValueError(
                f"trace entry {i} must be (cycle, src, dst[, length]), "
                f"got {entry!r}")
        cycle, src, dst, length = (int(v) for v in entry)
        if cycle < 0 or length < 1:
            raise ValueError(f"trace entry {i}: cycle must be >= 0 and "
                             f"length >= 1, got {entry!r}")
        sched.setdefault(cycle, []).append((src, dst, length))
    if not sched:
        raise ValueError("trace_replay needs a non-empty "
                         "pattern_kwargs['trace'] schedule")
    return sched


def _no_trace(topo, rng, **kw):
    raise ValueError("trace_replay needs pattern_kwargs['trace'] with "
                     "(cycle, src, dst[, length]) entries")


PATTERNS = {
    "uniform": lambda topo, rng, **kw: uniform_pattern(topo, rng),
    "transpose": lambda topo, rng, **kw: transpose_pattern(topo),
    "bit_complement": lambda topo, rng, **kw: bit_complement_pattern(topo),
    "bit_reverse": lambda topo, rng, **kw: bit_reverse_pattern(topo),
    "hotspot": lambda topo, rng, **kw: hotspot_pattern(topo, rng, **kw),
    "neighbor": lambda topo, rng, **kw: neighbor_pattern(topo, rng),
    "permutation": lambda topo, rng, **kw: permutation_pattern(topo, rng),
    "dimension_reverse":
        lambda topo, rng, **kw: dimension_reverse_pattern(topo),
    "bursty": lambda topo, rng, **kw: bursty_pattern(topo, rng, **kw),
    # schedule-driven: TrafficGenerator replays the schedule itself and
    # never calls this factory — it exists so the registry stays the
    # single source of valid pattern names (and fails loudly if someone
    # asks it for a destination function)
    "trace_replay": _no_trace,
}


@dataclass
class TrafficGenerator:
    """Bernoulli message injection against a destination pattern.

    ``load`` is offered load in flits/node/cycle; with fixed message
    length L the per-cycle message probability per node is load / L.
    """

    topology: Topology
    pattern: str = "uniform"
    load: float = 0.1
    message_length: int = 8
    seed: int = 1
    pattern_kwargs: dict | None = None

    def __post_init__(self):
        if not 0.0 <= self.load <= 1.0:
            raise ValueError("load must be in [0, 1] flits/node/cycle")
        if self.message_length < 1:
            raise ValueError("message_length must be >= 1")
        if self.pattern not in PATTERNS:
            raise ValueError(f"unknown pattern {self.pattern!r}; choose "
                             f"from {sorted(PATTERNS)}")
        self.rng = np.random.default_rng(self.seed)
        self._p = self.load / self.message_length
        self._on = None          # bursty: per-node on/off Markov state
        self._trace_sched = None  # trace_replay: cycle -> triples
        kw = dict(self.pattern_kwargs or {})
        if self.pattern == "trace_replay":
            self._trace_sched = trace_replay_schedule(
                kw.pop("trace", ()), self.message_length)
            self._trace_period = int(kw.pop("repeat", 0))
            if self._trace_period < 0:
                raise ValueError("trace_replay repeat must be >= 0 "
                                 "(0 = play the schedule once)")
            if kw:
                raise ValueError(f"trace_replay got unknown "
                                 f"pattern_kwargs {sorted(kw)}")
            self._dest = None
            return
        if self.pattern == "bursty":
            duty = float(kw.pop("duty", 0.3))
            burst_len = int(kw.pop("burst_len", 24))
            if not 0.0 < duty <= 1.0:
                raise ValueError("bursty duty must be in (0, 1]")
            if burst_len < 1:
                raise ValueError("bursty burst_len must be >= 1 cycle")
            # two-state Markov chain calibrated so the stationary
            # on-fraction is `duty` and the mean on-stretch is
            # `burst_len` cycles; injecting at p/duty while on keeps
            # the mean offered load equal to the plain Bernoulli model
            self._p_exit = 1.0 / burst_len
            self._p_enter = (1.0 if duty >= 1.0 else
                             min(1.0, duty / (1.0 - duty) * self._p_exit))
            self._p_active = min(1.0, self._p / duty)
            self._on = self.rng.random(self.topology.n_nodes) < duty
        self._dest = PATTERNS[self.pattern](self.topology, self.rng, **kw)

    def destinations(self) -> PatternFn:
        return self._dest

    def tick(self, cycle: int) -> list[tuple[int, int, int]]:
        """(src, dst, length) triples to inject this cycle."""
        if self._trace_sched is not None:
            c = cycle % self._trace_period if self._trace_period else cycle
            return list(self._trace_sched.get(c, ()))
        if self._on is not None:
            return self._tick_bursty()
        # one bulk draw per cycle regardless of hits keeps the RNG
        # stream (and thus every experiment) identical to the naive
        # per-node loop while skipping the non-injecting nodes
        draws = self.rng.random(self.topology.n_nodes)
        srcs = (draws < self._p).nonzero()[0].tolist()
        return self._emit(srcs)

    def _tick_bursty(self) -> list[tuple[int, int, int]]:
        on = self._on
        flips = self.rng.random(len(on))
        enter = ~on & (flips < self._p_enter)
        leave = on & (flips < self._p_exit)
        on ^= enter | leave
        draws = self.rng.random(len(on))
        srcs = (on & (draws < self._p_active)).nonzero()[0].tolist()
        return self._emit(srcs)

    def _emit(self, srcs: list[int]) -> list[tuple[int, int, int]]:
        if not srcs:
            return []
        length = self.message_length
        batch = getattr(self._dest, "batch", None)
        if batch is not None:
            return [(src, dst, length)
                    for src, dst in zip(srcs, batch(srcs)) if dst != src]
        out = []
        for src in srcs:
            dst = self._dest(src)
            if dst != src:
                out.append((src, dst, length))
        return out

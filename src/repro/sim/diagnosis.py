"""Hop-by-hop fault-diagnosis protocol: per-node fault views.

The paper's assumption iv says routers learn of a fault through a
diagnosis phase before any routing state is recomputed.  The simulator
historically short-circuited that phase: one global ``FaultState`` was
shared by every router, so the instant a fault was confirmed *all*
nodes knew.  This module models the diagnosis phase explicitly:

* every node owns a **fault view** — a private :class:`FaultState`
  recording the faults this node has been *notified* of;
* when a fault is confirmed at its detection site (the adjacent
  Information Units, after the heartbeat ``detection_delay``), a
  notification **floods hop-by-hop** over the surviving links at a
  configurable speed (``diagnosis_hop_delay`` cycles per hop — the
  bounded-delay information channel of paper Figure 3);
* a node's view is updated when the notification reaches it; the
  network treats the fault as **globally diagnosed** (and reruns the
  routing algorithm's distributed recomputation) once the flood has
  reached every node it can reach.

Nodes cut off from the detection site by the fault pattern itself never
learn of the event — exactly the partition behaviour a real flooding
protocol has.  ``diagnosis_hop_delay=0`` disables the engine entirely
and reproduces the legacy instant-knowledge behaviour bit-for-bit.
"""

from __future__ import annotations

from collections import deque
from heapq import heappop, heappush

from ..obs import events as trace_ev
from ..obs.tracer import NULL_TRACER
from .faults import FaultEvent, FaultState
from .topology import Topology


def _event_payload(event: FaultEvent) -> dict:
    """JSON-able trace payload for a fault event (the key is ``fault``,
    not ``kind`` — ``kind`` names the trace-event type itself)."""
    target = (list(event.target) if event.kind == "link"
              else int(event.target))
    return {"fault": event.kind, "target": target}


class DiagnosisEngine:
    """Schedules and delivers fault-notification floods.

    The engine owns one :class:`FaultState` view per node.  Floods are
    precomputed at confirmation time (BFS distance from the detection
    sites over the currently healthy links) and delivered from a heap —
    cost is O(nodes) per fault event, zero per quiet cycle.
    """

    def __init__(self, topology: Topology, ground_truth: FaultState,
                 hop_delay: int, tracer=None):
        if hop_delay < 1:
            raise ValueError("diagnosis hop delay must be >= 1 cycle")
        self.topology = topology
        self.faults = ground_truth       # live reference, never mutated here
        self.hop_delay = hop_delay
        self.tracer = NULL_TRACER if tracer is None else tracer
        self.views: list[FaultState] = [FaultState(topology)
                                        for _ in topology.nodes()]
        # (deliver_cycle, seq, node, event); seq keeps the heap stable
        self._heap: list[tuple[int, int, int, FaultEvent]] = []
        self._seq = 0
        #: deliveries still owed per in-flight event
        self._remaining: dict[FaultEvent, int] = {}
        #: nodes each in-flight event will have reached on completion
        self._reached: dict[FaultEvent, list[int]] = {}
        #: (event, node) -> cycle the node's view confirms the event
        #: (absent: the node never learns of it)
        self._eta: dict[tuple[FaultEvent, int], int] = {}

    # -- queries -------------------------------------------------------

    def view(self, node: int) -> FaultState:
        return self.views[node]

    def pending(self) -> bool:
        return bool(self._heap)

    def eta(self, node: int, event: FaultEvent) -> int | None:
        """Cycle at which ``node``'s view confirms ``event`` (past or
        future), or None if the notification can never reach it."""
        return self._eta.get((event, node))

    # -- flood lifecycle -----------------------------------------------

    def seed_boot(self, event: FaultEvent) -> None:
        """Faults present at boot are already diagnosed everywhere (the
        detection machinery models *dynamic* failures only)."""
        for node, view in enumerate(self.views):
            view.apply(event)
            self._eta[(event, node)] = 0

    def start_flood(self, event: FaultEvent, cycle: int) -> int:
        """Begin flooding a confirmed fault from its detection sites;
        returns the cycle the flood will have converged."""
        sites = self._detection_sites(event)
        dist = self._bfs_distances(sites)
        reached = []
        last = cycle
        for node, d in dist.items():
            when = cycle + d * self.hop_delay
            heappush(self._heap, (when, self._seq, node, event))
            self._seq += 1
            self._eta[(event, node)] = when
            reached.append(node)
            if when > last:
                last = when
        self._remaining[event] = len(reached)
        self._reached[event] = reached
        tr = self.tracer
        if tr.enabled:
            tr.emit(trace_ev.FAULT_FLOOD_START, sites=sites,
                    nodes=len(reached), converges=last,
                    **_event_payload(event))
        return last

    def deliver_due(self, cycle: int) -> list[tuple[FaultEvent, list[int]]]:
        """Apply every notification due by ``cycle`` to its node view;
        returns the events whose floods completed, with the nodes each
        one reached."""
        completed: list[tuple[FaultEvent, list[int]]] = []
        tr = self.tracer
        while self._heap and self._heap[0][0] <= cycle:
            _, _, node, event = heappop(self._heap)
            self.views[node].apply(event)
            if tr.enabled:
                tr.emit(trace_ev.FAULT_FLOOD_NODE, node=node,
                        **_event_payload(event))
            self._remaining[event] -= 1
            if self._remaining[event] == 0:
                del self._remaining[event]
                completed.append((event, self._reached.pop(event)))
        return completed

    # -- flood geometry ------------------------------------------------

    def _detection_sites(self, event: FaultEvent) -> list[int]:
        """The nodes whose Information Units detect the event directly:
        a dying link's two endpoints, a dying node's live neighbours."""
        if event.kind == "link":
            a, b = event.target  # type: ignore[misc]
            return [n for n in (a, b) if self.faults.node_ok(n)]
        node = int(event.target)  # type: ignore[arg-type]
        return [nb for nb in self.topology.neighbors(node)
                if self.faults.node_ok(nb)]

    def _bfs_distances(self, sites: list[int]) -> dict[int, int]:
        """Hop distance from the nearest detection site, flooding only
        over links that are healthy in the *ground truth* (a
        notification cannot cross a dead link)."""
        dist: dict[int, int] = {}
        queue: deque[int] = deque()
        for s in sites:
            if s not in dist:
                dist[s] = 0
                queue.append(s)
        link_ok = self.faults.link_ok
        ports = self.topology.ports
        while queue:
            cur = queue.popleft()
            d = dist[cur] + 1
            for p in ports(cur).values():
                nb = p.neighbor
                if nb not in dist and link_ok(cur, nb):
                    dist[nb] = d
                    queue.append(nb)
        return dist

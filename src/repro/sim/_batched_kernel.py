"""Compiled cycle kernels for the batched engine (:mod:`repro.sim.batched`).

The allocation walk is inherently sequential — a grant frees a
downstream credit that a later-ordered router may consume in the *same*
cycle — so it cannot be a masked argmax over arrays.  Instead the
struct-of-arrays state is advanced by a small C kernel doing exactly
the object engine's walk over int32 arrays: flush, injection pushes,
the route-stage scan (transitions + load re-sorts), and the
allocate/grant/transfer walk with the stock round-robin pointers.

Decisions themselves stay in Python (the routing *algorithm* is the
reproduced artifact), but algorithms that declare a native descriptor
(:attr:`~repro.routing.base.RoutingAlgorithm.native_fields`) get a
C-side replay cache: the header fields the algorithm consults are
mirrored in per-message int32 arrays, each fresh decision is keyed by
``(node, dst, in_port, in_vc, livelock-overflow, field values)`` — a
strictly finer key than ``route_cache_key``, hence always safe — and a
hit replays the recorded decision (field writes, candidate set, RESORT
re-sort by current loads, digest line, stats counters) without entering
Python at all.  Only genuine misses (first sighting of a key this
epoch, REROUTE-hinted branches, stuck declarations) cross into Python.

The kernel is built on demand with the system C compiler (``cc -O3
-shared -fPIC``) and cached by source hash; cffi's ABI mode loads the
shared object.  No third-party build machinery is required.  When no
compiler (or cffi) is available — or ``REPRO_BATCHED_NO_CC`` is set —
:func:`load_kernel` returns None and the engine factory transparently
falls back to the object engine.
"""

from __future__ import annotations

import hashlib
import os
import shutil
import subprocess
import tempfile

#: number of int32s in a native cache key:
#: node, dst, in_port, in_vc, over, f0..f4
KEYW = 10
#: mirrored native fields per message (key uses up to this many)
MAXF = 5
#: encoding of an absent header field in the mirrors
FIELD_ABSENT = -1000000
#: encoding of an explicit None value (distinct from absent)
FIELD_NONE = -999999
#: digest byte-buffer capacity and the per-round reserve that triggers
#: a flush back to Python's sha256 (the reserve bounds one node's worth
#: of lines: <= 64 decisions x ~1.6 KB)
DIG_CAP = 1 << 20
DIG_RESERVE = 1 << 17
#: clean-table geometry: (sign dx + 1) x (sign dy + 1) x vn-code x term
#: keys and the per-entry candidate capacity
CT_KEYS = 54
CT_CANDS = 8

#: struct layout shared between the cffi cdef and the C source.  Every
#: pointer aliases a numpy array owned by the Python-side state; the
#: kernel never allocates.
_STRUCT = """
typedef struct {
    int32_t n_nodes, n_iv, cap, n_vcs, max_pid, maxc, inj_vc;
    /* native decision cache configuration */
    int32_t n_native;         /* mirrored fields (0 = cache disabled)  */
    int32_t cps;              /* SimConfig.cycles_per_step             */
    int32_t hop_budget;       /* network livelock guard (0 = off)      */
    int32_t limit;            /* algorithm livelock limit for the key's
                                 'over' flag (INT32_MAX = never)       */
    int32_t dig_on;           /* digest attached: format lines in C    */
    int32_t trace_on;         /* log head-departure events for replay  */
    int32_t term_on;          /* departure rule: term := out==term[vn] */
    int32_t term_f, vn_f;     /* field indices for the departure rule  */
    int32_t key_port, key_vc; /* include in_port / in_vc in the key
                                 (algorithms that never consult them
                                 declare it, shrinking the key space) */
    int32_t tab_mask;         /* hash slots - 1                        */
    int32_t n_ent, ent_cap;   /* cache entries used / capacity         */
    int32_t dig_used, dig_cap;
    /* active-set scheduling */
    int32_t n_act;            /* live entries in act_list              */
    int32_t scan_ai;          /* route-scan resume cursor (act index)  */
    /* metrics bookkeeping (array-native MetricsTimeseries gauges) */
    int32_t m_on;             /* a timeseries is attached              */
    int32_t m_prune;          /* prune the _active mirror each cycle   */
    int32_t m_count;          /* |_active| mirror for the gauge        */
    /* build-time clean decision table (fault-free relative-key form) */
    int32_t ct_on;            /* table lookups live this epoch         */
    int32_t ct_vnf, ct_termf; /* native slots of vn / term (-1: none)  */
    /* static layout */
    int32_t *iv_off;          /* n_nodes+1: gid span per node          */
    int32_t *iv_node;         /* n_iv                                  */
    int32_t *iv_port;         /* n_iv: port id, -1 for LOCAL           */
    int32_t *iv_vc;           /* n_iv                                  */
    int32_t *portbase;        /* n_nodes x (max_pid+2): gid base or -1 */
    int32_t *ov_down;         /* n_iv: downstream input gid or -1      */
    /* dynamic per input VC (= per output VC: same (node,port,vc)) */
    int32_t *buf_msg;         /* n_iv x cap ring                       */
    int32_t *buf_seq;
    int32_t *buf_head;
    int32_t *buf_cnt;
    int32_t *inc_msg;         /* 1-deep staging slot (<=1 arrival/cyc) */
    int32_t *inc_seq;
    uint8_t *inc_val;
    uint8_t *st;              /* 0 idle 1 routing 2 routed 3 active    */
    int32_t *ready;
    int32_t *epoch;
    int32_t *o_port;          /* held output (-1 LOCAL, -100 none)     */
    int32_t *o_vc;
    uint8_t *deliver;
    uint8_t *stuckf;
    uint8_t *hint;            /* RouteDecision.refresh_hint            */
    int32_t *ncand;
    int32_t *cand_p;          /* n_iv x maxc                           */
    int32_t *cand_v;
    int32_t *head_msg;        /* msg id of the routed worm, -1 none    */
    int32_t *ov_owner;        /* owning input gid or -1                */
    int32_t *r_nflits;        /* per node                              */
    uint8_t *node_ok;
    uint8_t *alive;           /* n_nodes x (max_pid+2); slot 0=LOCAL=1 */
    int32_t *src_cur;         /* per node: injecting msg id or -1      */
    int32_t *src_pos;
    int32_t *src_qlen;        /* per node: queued-message mirror       */
    int64_t *rr_ptr;          /* max_pid+2: round-robin pointers       */
    int64_t *counters;        /* 0 load_token 1 hops 2 nontail 3 nev   */
    int32_t *ev_kind;         /* 0 head-depart 1 tail-eject            */
    int32_t *ev_node;
    int32_t *ev_msg;
    int32_t *ev_a;            /* out_port for head events              */
    int32_t *ev_b;            /* out_vc  for head events               */
    int32_t *req_g;           /* per-node request staging              */
    int32_t *req_ov;
    uint8_t *req_head;
    /* per-message mirrors (indexed by msg id, grown by Python) */
    int32_t *msg_len;
    int32_t *msg_dst;
    int32_t *msg_plen;        /* path_len                              */
    int32_t *msg_f;           /* n_msgs x 5 encoded native fields      */
    int32_t *term_port;       /* vn -> committing out port (8 slots)   */
    /* decision cache: open addressing -> parallel entry arrays */
    int32_t *tab;             /* tab_mask+1 slots: entry idx or -1     */
    int32_t *ek;              /* ent_cap x 10 keys                     */
    int32_t *ea;              /* ent_cap x 5 after-values              */
    uint8_t *e_deliver;
    int32_t *e_steps;
    uint8_t *e_hint;
    int32_t *e_ncand;
    int32_t *e_cp;            /* ent_cap x maxc                        */
    int32_t *e_cv;
    /* decision digest byte stream + stats accumulators */
    uint8_t *dig;
    int64_t *dstat;           /* 0 decisions 1 steps-sum 2 max 3 lines */
    /* active-set + metrics arrays */
    int32_t *act_list;        /* n_nodes: active node ids; sorted at
                                 cycle start, same-cycle appends at the
                                 tail (processed from the next cycle)  */
    uint8_t *act_flag;        /* n_nodes: act_list membership          */
    uint8_t *m_flag;          /* n_nodes: object-engine _active mirror */
    int64_t *link_cnt;        /* n_iv: flits forwarded per output VC   */
    /* clean table: node coordinates + CT_KEYS dense entries */
    int32_t *node_x;
    int32_t *node_y;
    uint8_t *ct_valid;
    uint8_t *ct_deliver;
    uint8_t *ct_hint;
    int32_t *ct_steps;
    int32_t *ct_ncand;
    int32_t *ct_vn_after;     /* F_ABSENT = leave the vn field alone   */
    int32_t *ct_cp;           /* CT_KEYS x CT_CANDS                    */
    int32_t *ct_cv;
} BState;
"""

_CDEF = """
typedef signed char int8_t;
typedef unsigned char uint8_t;
typedef int int32_t;
typedef long long int64_t;
""" + _STRUCT + """
void k_flush(BState *s);
int  k_start_scan(BState *s, int32_t *out_nodes);
int  k_inject(BState *s, int32_t *out_heads);
int  k_route_scan(BState *s, int start_ai, int cycle, int epoch,
                  int adaptive, int32_t *need);
int  k_try_hit(BState *s, int g, int cycle, int epoch);
void k_note(BState *s, int g, int steps, int32_t b0, int32_t b1,
            int32_t b2, int32_t b3, int32_t b4, int cacheable,
            int fresh);
void k_resort(BState *s, int g);
int  k_alloc(BState *s);
int  k_purge(BState *s, int node, int msg);
int  k_purge_all(BState *s, int msg);
void k_activate(BState *s, int node);
void k_cache_clear(BState *s);
void k_rehash(BState *s);
"""

_SOURCE = """
#include <stdint.h>
#include <stdio.h>
#include <string.h>
""" + _STRUCT + """

#define SLOT(s, node, pid) ((node) * ((s)->max_pid + 2) + (pid) + 1)
#define KEYW 10
#define MAXF 5
#define F_ABSENT (-1000000)
#define CT_CANDS 8

/* -- active-set scheduling ---------------------------------------- */

/* every kernel walk iterates the compact active-node list instead of
   all n_nodes, so idle fabric costs nothing per cycle; nodes enter on
   flit arrival or source activity and leave via the cycle-start sweep */
static void activate(BState *s, int node)
{
    if (!s->act_flag[node]) {
        s->act_flag[node] = 1;
        s->act_list[s->n_act++] = node;
    }
}

void k_activate(BState *s, int node) { activate(s, node); }

/* cycle-start sweep: drop nodes with no flits and no source work (the
   object engine's lazy _active prune), maintain the metrics _active
   mirror, and keep the list sorted ascending — every kernel walk then
   preserves the sequential node order the same-cycle credit chains and
   the decision digest depend on */
static void act_compact(BState *s)
{
    int n = s->n_act, w = 0;
    for (int i = 0; i < n; i++) {
        int node = s->act_list[i];
        if (s->m_prune && s->m_flag[node] && s->r_nflits[node] <= 0) {
            s->m_flag[node] = 0;
            s->m_count--;
        }
        if (s->r_nflits[node] > 0 || s->src_cur[node] >= 0
                || s->src_qlen[node] > 0)
            s->act_list[w++] = node;
        else
            s->act_flag[node] = 0;
    }
    for (int i = 1; i < w; i++) {   /* few unsorted same-cycle appends */
        int v = s->act_list[i], j = i - 1;
        while (j >= 0 && s->act_list[j] > v) {
            s->act_list[j + 1] = s->act_list[j];
            j--;
        }
        s->act_list[j + 1] = v;
    }
    s->n_act = w;
}

/* one flit arrives per input VC per cycle at most (each input VC is
   fed by exactly one upstream output VC, local VCs by injection), so
   the 1-deep staging slot mirrors the object engine's incoming list */
void k_flush(BState *s)
{
    act_compact(s);
    int na = s->n_act;
    for (int ai = 0; ai < na; ai++) {
        int node = s->act_list[ai];
        if (s->r_nflits[node] <= 0) continue;
        int hi = s->iv_off[node + 1];
        for (int g = s->iv_off[node]; g < hi; g++) {
            if (!s->inc_val[g]) continue;
            int idx = (s->buf_head[g] + s->buf_cnt[g]) % s->cap;
            s->buf_msg[(int64_t)g * s->cap + idx] = s->inc_msg[g];
            s->buf_seq[(int64_t)g * s->cap + idx] = s->inc_seq[g];
            s->buf_cnt[g]++;
            s->inc_val[g] = 0;
        }
    }
}

/* per-flit injection pushes; worm starts (queue pops) happen on the
   Python side before this runs.  Heads that actually entered are
   reported so Message.injected can be stamped. */
/* nodes that should pop a queued message and start a new worm this
   cycle (ascending order = the object engine's scan order); the
   queue-length mirror and worm cursor are pre-adjusted here — the
   caller MUST pop one message per listed node and set src_cur */
int k_start_scan(BState *s, int32_t *out_nodes)
{
    int n = 0, na = s->n_act;
    for (int ai = 0; ai < na; ai++) {
        int node = s->act_list[ai];
        if (s->src_cur[node] < 0 && s->src_qlen[node] > 0
                && s->node_ok[node]) {
            s->src_qlen[node]--;
            s->src_pos[node] = 0;
            out_nodes[n++] = node;
        }
    }
    return n;
}

int k_inject(BState *s, int32_t *out_heads)
{
    int nh = 0, na = s->n_act;
    for (int ai = 0; ai < na; ai++) {
        int node = s->act_list[ai];
        int cur = s->src_cur[node];
        if (cur < 0 || !s->node_ok[node]) continue;
        int g = s->portbase[SLOT(s, node, -1)] + s->inj_vc;
        if (s->buf_cnt[g] + s->inc_val[g] >= s->cap) continue;
        int seq = s->src_pos[node];
        s->inc_msg[g] = cur;
        s->inc_seq[g] = seq;
        s->inc_val[g] = 1;
        s->r_nflits[node]++;
        if (s->m_on && !s->m_flag[node]) {
            s->m_flag[node] = 1;
            s->m_count++;
        }
        if (seq == 0) out_heads[nh++] = cur;
        s->src_pos[node] = seq + 1;
        if (seq + 1 >= s->msg_len[cur]) s->src_cur[node] = -1;
    }
    return nh;
}

static int load_of(BState *s, int node, int pid)
{
    int base = s->portbase[SLOT(s, node, pid)];
    int tot = 0;
    for (int v = 0; v < s->n_vcs; v++) {
        int ovg = base + v;
        int d = s->ov_down[ovg];
        if (d >= 0) tot += s->buf_cnt[d] + s->inc_val[d];
        if (s->ov_owner[ovg] >= 0) tot += 1;
    }
    return tot;
}

/* re-sort the candidate list by (output load, port, vc) — the refresh
   a REFRESH_RESORT decision declares equivalent to re-routing */
static void resort_cands(BState *s, int g, int node)
{
    int n = s->ncand[g];
    if (n < 2) return;
    int32_t *cp = s->cand_p + (int64_t)g * s->maxc;
    int32_t *cv = s->cand_v + (int64_t)g * s->maxc;
    int loads[64];
    for (int i = 0; i < n; i++) loads[i] = load_of(s, node, cp[i]);
    for (int i = 1; i < n; i++) {
        int lo = loads[i], pp = cp[i], vv = cv[i];
        int j = i - 1;
        while (j >= 0 && (loads[j] > lo
                          || (loads[j] == lo
                              && (cp[j] > pp
                                  || (cp[j] == pp && cv[j] > vv))))) {
            loads[j + 1] = loads[j];
            cp[j + 1] = cp[j];
            cv[j + 1] = cv[j];
            j--;
        }
        loads[j + 1] = lo;
        cp[j + 1] = pp;
        cv[j + 1] = vv;
    }
}

void k_resort(BState *s, int g)
{
    resort_cands(s, g, s->iv_node[g]);
}

/* ---- native decision cache ------------------------------------- */

static void mk_key(BState *s, int g, int mid, int32_t *k)
{
    k[0] = s->iv_node[g];
    k[1] = s->msg_dst[mid];
    k[2] = s->key_port ? s->iv_port[g] : 0;
    k[3] = s->key_vc ? s->iv_vc[g] : 0;
    k[4] = s->msg_plen[mid] > s->limit ? 1 : 0;
    const int32_t *f = s->msg_f + (int64_t)mid * MAXF;
    for (int i = 0; i < MAXF; i++) k[5 + i] = f[i];
}

static uint32_t key_hash(const int32_t *k)
{
    uint32_t h = 2166136261u;
    for (int i = 0; i < KEYW; i++) {
        h ^= (uint32_t)k[i];
        h *= 16777619u;
    }
    return h;
}

static int probe(BState *s, const int32_t *k)
{
    uint32_t m = (uint32_t)s->tab_mask;
    for (uint32_t j = key_hash(k) & m;; j = (j + 1) & m) {
        int e = s->tab[j];
        if (e < 0) return -1;
        const int32_t *ek = s->ek + (int64_t)e * KEYW;
        int ok = 1;
        for (int i = 0; i < KEYW; i++)
            if (ek[i] != k[i]) { ok = 0; break; }
        if (ok) return e;
    }
}

/* append one decision line to the digest byte stream — byte-identical
   to DecisionDigest.update: node|msg|deliver|stuck|steps|p.v|p.v\\n */
static void dig_line(BState *s, int node, int g, int steps)
{
    if (!s->dig_on) return;
    char *base = (char *)s->dig;
    char *p = base + s->dig_used;
    p += sprintf(p, "%d|%d|%d|%d|%d", node, s->head_msg[g],
                 s->deliver[g] ? 1 : 0, s->stuckf[g] ? 1 : 0, steps);
    int n = s->ncand[g];
    const int32_t *cp = s->cand_p + (int64_t)g * s->maxc;
    const int32_t *cv = s->cand_v + (int64_t)g * s->maxc;
    for (int i = 0; i < n; i++)
        p += sprintf(p, "|%d.%d", cp[i], cv[i]);
    *p++ = '\\n';
    s->dig_used = (int32_t)(p - base);
    s->dstat[3]++;
}

/* shared tail of every C-side decision replay: the decision-latency
   timer, the RESORT re-sort by current loads, stats counters and the
   digest line — the exact effect the object engine's route_stage
   would have had */
static void apply_common(BState *s, int g, int node, int steps,
                         int cycle, int epoch)
{
    s->st[g] = 1;
    s->stuckf[g] = 0;
    int lat = steps * s->cps;
    if (lat < 1) lat = 1;
    s->ready[g] = cycle + lat - 1;
    s->epoch[g] = epoch;
    if (s->hint[g] == 1) resort_cands(s, g, node);
    s->dstat[0]++;
    s->dstat[1] += steps;
    if (steps > s->dstat[2]) s->dstat[2] = steps;
    dig_line(s, node, g, steps);
    if (cycle >= s->ready[g]) s->st[g] = 2;     /* same-cycle ROUTED */
}

/* replay an exact-key cache entry: recorded header-field after-values
   plus the recorded candidate set */
static void apply_hit(BState *s, int g, int node, int mid, int e,
                      int cycle, int epoch)
{
    int32_t *f = s->msg_f + (int64_t)mid * MAXF;
    const int32_t *a = s->ea + (int64_t)e * MAXF;
    for (int i = 0; i < s->n_native; i++) f[i] = a[i];
    s->head_msg[g] = mid;
    s->deliver[g] = s->e_deliver[e];
    s->hint[g] = s->e_hint[e];
    int n = s->e_ncand[e];
    s->ncand[g] = n;
    memcpy(s->cand_p + (int64_t)g * s->maxc,
           s->e_cp + (int64_t)e * s->maxc, n * sizeof(int32_t));
    memcpy(s->cand_v + (int64_t)g * s->maxc,
           s->e_cv + (int64_t)e * s->maxc, n * sizeof(int32_t));
    apply_common(s, g, node, s->e_steps[e], cycle, epoch);
}

/* Build-time clean table: while the known-fault set is empty, the
   native mesh algorithms' decisions are a pure function of (sign dx,
   sign dy, vn, term) — translation-invariant, so a 54-entry table
   proved once per build by running route() at a central node replays
   the decision for any congruent (node, dst, state) without ever
   entering Python, even on the very first sighting of a key.  Falls
   through (return 0) whenever the message state leaves the table's
   domain: livelock overflow, any other native field set, or an entry
   the builder could not prove. */
static int ct_lookup(BState *s, int g, int node, int mid,
                     int cycle, int epoch)
{
    if (!s->ct_on || s->msg_plen[mid] > s->limit) return 0;
    int32_t *f = s->msg_f + (int64_t)mid * MAXF;
    int term = 0, vncode = 0;
    for (int i = 0; i < s->n_native; i++) {
        int fv = f[i];
        if (i == s->ct_vnf) {
            if (fv == 0) vncode = 1;
            else if (fv == 1) vncode = 2;
            else if (fv != F_ABSENT) return 0;
        } else if (i == s->ct_termf) {
            if (fv == 1) term = 1;
            else if (fv != F_ABSENT && fv != 0) return 0;
        } else if (fv != F_ABSENT)
            return 0;
    }
    int dst = s->msg_dst[mid];
    int ddx = s->node_x[dst] - s->node_x[node];
    int ddy = s->node_y[dst] - s->node_y[node];
    int sdx = (ddx > 0) - (ddx < 0);
    int sdy = (ddy > 0) - (ddy < 0);
    int idx = (((sdx + 1) * 3 + sdy + 1) * 3 + vncode) * 2 + term;
    if (!s->ct_valid[idx]) return 0;
    if (s->ct_vn_after[idx] != F_ABSENT)
        f[s->ct_vnf] = s->ct_vn_after[idx];
    s->head_msg[g] = mid;
    s->deliver[g] = s->ct_deliver[idx];
    s->hint[g] = s->ct_hint[idx];
    int n = s->ct_ncand[idx];
    s->ncand[g] = n;
    memcpy(s->cand_p + (int64_t)g * s->maxc,
           s->ct_cp + (int64_t)idx * CT_CANDS, n * sizeof(int32_t));
    memcpy(s->cand_v + (int64_t)g * s->maxc,
           s->ct_cv + (int64_t)idx * CT_CANDS, n * sizeof(int32_t));
    apply_common(s, g, node, s->ct_steps[idx], cycle, epoch);
    return 1;
}

int k_try_hit(BState *s, int g, int cycle, int epoch)
{
    if (!s->n_native) return 0;
    int hd = s->buf_head[g];
    int mid = s->buf_msg[(int64_t)g * s->cap + hd];
    if (s->buf_seq[(int64_t)g * s->cap + hd] != 0) return 0;
    if (ct_lookup(s, g, s->iv_node[g], mid, cycle, epoch)) return 1;
    int32_t k[KEYW];
    mk_key(s, g, mid, k);
    int e = probe(s, k);
    if (e < 0) return 0;
    apply_hit(s, g, s->iv_node[g], mid, e, cycle, epoch);
    return 1;
}

/* record a Python-computed decision: append its digest line (fresh
   decisions only — refreshes are silent) and, when cacheable, install
   a cache entry keyed by the field values *before* the decision ran
   (b0..b4), capturing the after-values from the mirrors the caller
   just synced. */
void k_note(BState *s, int g, int steps, int32_t b0, int32_t b1,
            int32_t b2, int32_t b3, int32_t b4, int cacheable,
            int fresh)
{
    int node = s->iv_node[g];
    if (fresh) dig_line(s, node, g, steps);
    if (!cacheable || !s->n_native || s->n_ent >= s->ent_cap) return;
    int mid = s->head_msg[g];
    int32_t k[KEYW];
    k[0] = node;
    k[1] = s->msg_dst[mid];
    k[2] = s->key_port ? s->iv_port[g] : 0;
    k[3] = s->key_vc ? s->iv_vc[g] : 0;
    k[4] = s->msg_plen[mid] > s->limit ? 1 : 0;
    k[5] = b0; k[6] = b1; k[7] = b2; k[8] = b3; k[9] = b4;
    uint32_t m = (uint32_t)s->tab_mask;
    uint32_t j = key_hash(k) & m;
    for (;; j = (j + 1) & m) {
        int e = s->tab[j];
        if (e < 0) break;
        const int32_t *ek = s->ek + (int64_t)e * KEYW;
        int same = 1;
        for (int i = 0; i < KEYW; i++)
            if (ek[i] != k[i]) { same = 0; break; }
        if (same) return;                       /* already recorded */
    }
    int e = s->n_ent++;
    memcpy(s->ek + (int64_t)e * KEYW, k, KEYW * sizeof(int32_t));
    memcpy(s->ea + (int64_t)e * MAXF, s->msg_f + (int64_t)mid * MAXF,
           MAXF * sizeof(int32_t));
    s->e_deliver[e] = s->deliver[g];
    s->e_steps[e] = steps;
    s->e_hint[e] = s->hint[g];
    int n = s->ncand[g];
    s->e_ncand[e] = n;
    memcpy(s->e_cp + (int64_t)e * s->maxc,
           s->cand_p + (int64_t)g * s->maxc, n * sizeof(int32_t));
    memcpy(s->e_cv + (int64_t)e * s->maxc,
           s->cand_v + (int64_t)g * s->maxc, n * sizeof(int32_t));
    s->tab[j] = e;
}

void k_cache_clear(BState *s)
{
    memset(s->tab, 0xff, (int64_t)(s->tab_mask + 1) * sizeof(int32_t));
    s->n_ent = 0;
}

void k_rehash(BState *s)
{
    memset(s->tab, 0xff, (int64_t)(s->tab_mask + 1) * sizeof(int32_t));
    uint32_t m = (uint32_t)s->tab_mask;
    for (int e = 0; e < s->n_ent; e++) {
        uint32_t j = key_hash(s->ek + (int64_t)e * KEYW) & m;
        while (s->tab[j] >= 0) j = (j + 1) & m;
        s->tab[j] = e;
    }
}

/* Route stage over active-list indices >= start_ai (the list is
   sorted ascending at cycle start, so this is ascending node order),
   mirroring Router.route_stage gid-for-gid: idle heads are served
   from the clean table or the native cache, ROUTING timers expire,
   RESORT-hinted blocked heads are re-sorted.  The scan stops at the
   first input VC that needs Python — a cache miss, a REROUTE/
   epoch-stale refresh, a hop-budget overflow or a stuck decision
   about to fire — stores the cursor in scan_ai and returns that gid
   plus the node's remaining occupied gids (Python finishes the node
   in order, applies any stuck purges, and resumes at scan_ai+1, so
   purge effects are visible to later nodes exactly as in the object
   engine).  Returns 0 when every remaining node was handled, or
   -(ai+1) when the digest buffer needs a flush before act_list[ai]
   can be processed. */
int k_route_scan(BState *s, int start_ai, int cycle, int epoch,
                 int adaptive, int32_t *need)
{
    int na = s->n_act;
    for (int ai = start_ai; ai < na; ai++) {
        int node = s->act_list[ai];
        if (s->r_nflits[node] <= 0) continue;
        if (s->dig_on && s->dig_used > s->dig_cap - RESERVE_BYTES)
            return -(ai + 1);
        int lo = s->iv_off[node], hi = s->iv_off[node + 1];
        for (int g = lo; g < hi; g++) {
            if (!s->buf_cnt[g]) continue;
            uint8_t st = s->st[g];
            int hard = 0;
            if (st == 0) {
                int hd = s->buf_head[g];
                int mid = s->buf_msg[(int64_t)g * s->cap + hd];
                if (s->buf_seq[(int64_t)g * s->cap + hd] != 0
                        || (s->hop_budget
                            && s->msg_plen[mid] > s->hop_budget)) {
                    hard = 1;
                } else if (ct_lookup(s, g, node, mid, cycle, epoch)) {
                    /* served from the clean table */
                } else if (!s->n_native || s->n_ent >= s->ent_cap) {
                    hard = 1;
                } else {
                    int32_t k[KEYW];
                    mk_key(s, g, mid, k);
                    int e = probe(s, k);
                    if (e < 0) hard = 1;
                    else apply_hit(s, g, node, mid, e, cycle, epoch);
                }
            } else if (st == 2) {
                if (s->epoch[g] != epoch) hard = 1;
                else if (adaptive && s->hint[g] == 0) hard = 1;
                else if (s->stuckf[g]) hard = 1;
                else if (adaptive && s->hint[g] == 1)
                    resort_cands(s, g, node);
            } else if (st == 1 && cycle >= s->ready[g]) {
                if (s->stuckf[g]) hard = 1;
                else s->st[g] = 2;
            }
            if (hard) {
                int n = 0;
                for (int g2 = g; g2 < hi; g2++)
                    if (s->buf_cnt[g2]) need[n++] = g2;
                s->scan_ai = ai;
                return n;
            }
        }
    }
    return 0;
}

static void do_grant(BState *s, int node, int g, int ovg, int is_head)
{
    int hd = s->buf_head[g];
    int msg = s->buf_msg[(int64_t)g * s->cap + hd];
    int seq = s->buf_seq[(int64_t)g * s->cap + hd];
    s->buf_head[g] = (hd + 1) % s->cap;
    s->buf_cnt[g]--;
    s->r_nflits[node]--;
    s->counters[0]++;                      /* load token */
    int out_pid = s->iv_port[ovg];
    int is_tail = (seq == s->msg_len[msg] - 1);
    if (is_head) {
        s->ov_owner[ovg] = g;
        s->st[g] = 3;
        s->o_port[g] = out_pid;
        s->o_vc[g] = s->iv_vc[ovg];
        if (s->n_native) {
            /* the declared departure effect, applied in grant order:
               path-length bump + the terminal-commit rule */
            s->msg_plen[msg]++;
            if (s->term_on) {
                int v = s->msg_f[(int64_t)msg * MAXF + s->vn_f];
                if (v >= 0 && v < 8 && out_pid == s->term_port[v])
                    s->msg_f[(int64_t)msg * MAXF + s->term_f] = 1;
            }
        }
        if (s->trace_on) {
            int64_t e = s->counters[3]++;
            s->ev_kind[e] = 0;
            s->ev_node[e] = node;
            s->ev_msg[e] = msg;
            s->ev_a[e] = out_pid;
            s->ev_b[e] = s->iv_vc[ovg];
        }
    }
    if (is_tail) {
        s->ov_owner[ovg] = -1;
        s->st[g] = 0;                      /* release_worm */
        s->head_msg[g] = -1;
        s->ncand[g] = 0;
        s->deliver[g] = 0;
        s->stuckf[g] = 0;
        s->hint[g] = 0;
        s->o_port[g] = -100;
        s->o_vc[g] = -100;
    }
    if (out_pid == -1) {                   /* local ejection */
        if (is_tail) {
            int64_t e = s->counters[3]++;
            s->ev_kind[e] = 1;
            s->ev_node[e] = node;
            s->ev_msg[e] = msg;
            s->ev_a[e] = seq;
            s->ev_b[e] = 0;
        } else
            s->counters[2]++;              /* non-tail flit delivered */
    } else {
        int d = s->ov_down[ovg];
        int dn = s->iv_node[d];
        s->inc_msg[d] = msg;
        s->inc_seq[d] = seq;
        s->inc_val[d] = 1;
        s->r_nflits[dn]++;
        activate(s, dn);
        if (s->m_on) {
            s->link_cnt[ovg]++;            /* directed per-link flits */
            if (!s->m_flag[dn]) {
                s->m_flag[dn] = 1;
                s->m_count++;
            }
        }
        s->counters[1]++;                  /* flit hop */
    }
}

/* The allocation walk, node-ascending: collect at most one request per
   input VC, arbitrate per output port with the global round-robin
   pointers, grant.  In-cycle credit chains (a grant freeing space a
   later node consumes) fall out of the sequential order, exactly as in
   the object engine. */
int k_alloc(BState *s)
{
    int moved = 0, na = s->n_act;
    s->counters[1] = 0;
    s->counters[2] = 0;
    s->counters[3] = 0;
    for (int ai = 0; ai < na; ai++) {
        int node = s->act_list[ai];
        if (s->r_nflits[node] <= 0 || !s->node_ok[node]) continue;
        int lo = s->iv_off[node], hi = s->iv_off[node + 1];
        int nreq = 0;
        for (int g = lo; g < hi; g++) {
            if (!s->buf_cnt[g]) continue;
            uint8_t st = s->st[g];
            if (st == 2) {
                if (s->deliver[g]) {
                    s->req_g[nreq] = g;
                    s->req_ov[nreq] = s->portbase[SLOT(s, node, -1)]
                                      + s->iv_vc[g];
                    s->req_head[nreq++] = 1;
                    continue;
                }
                int n = s->ncand[g];
                int32_t *cp = s->cand_p + (int64_t)g * s->maxc;
                int32_t *cv = s->cand_v + (int64_t)g * s->maxc;
                for (int i = 0; i < n; i++) {
                    int pid = cp[i], vc = cv[i];
                    if (pid != -1 && !s->alive[SLOT(s, node, pid)])
                        continue;
                    int ovg = s->portbase[SLOT(s, node, pid)] + vc;
                    if (s->ov_owner[ovg] >= 0) continue;
                    if (pid != -1) {
                        int d = s->ov_down[ovg];
                        if (s->buf_cnt[d] + s->inc_val[d] >= s->cap)
                            continue;
                    }
                    s->req_g[nreq] = g;
                    s->req_ov[nreq] = ovg;
                    s->req_head[nreq++] = 1;
                    break;               /* one request per input VC */
                }
            } else if (st == 3) {
                int op = s->o_port[g];
                if (op == -1) {
                    s->req_g[nreq] = g;
                    s->req_ov[nreq] = s->portbase[SLOT(s, node, -1)]
                                      + s->o_vc[g];
                    s->req_head[nreq++] = 0;
                } else if (op >= 0 && s->alive[SLOT(s, node, op)]) {
                    int ovg = s->portbase[SLOT(s, node, op)] + s->o_vc[g];
                    int d = s->ov_down[ovg];
                    if (s->buf_cnt[d] + s->inc_val[d] < s->cap) {
                        s->req_g[nreq] = g;
                        s->req_ov[nreq] = ovg;
                        s->req_head[nreq++] = 0;
                    }
                }
            }
        }
        if (!nreq) continue;
        if (nreq == 1) {
            int g = s->req_g[0];
            int out_pid = s->iv_port[s->req_ov[0]];
            s->rr_ptr[out_pid + 1] =
                (int64_t)s->iv_port[g] * 64 + s->iv_vc[g] + 1;
            do_grant(s, node, g, s->req_ov[0], s->req_head[0]);
            moved++;
            continue;
        }
        /* group by output port via per-port chains (single pass);
           insertion order is ascending gid = ascending arbiter key,
           and ports are visited ascending (LOCAL = -1 first) */
        int headp[66], tailp[66], nextp[66];
        for (int op = 0; op <= s->max_pid + 1; op++) headp[op] = -1;
        for (int i = 0; i < nreq; i++) {
            int op = s->iv_port[s->req_ov[i]] + 1;
            if (headp[op] < 0) headp[op] = i;
            else nextp[tailp[op]] = i;
            nextp[i] = -1;
            tailp[op] = i;
        }
        for (int op = 0; op <= s->max_pid + 1; op++) {
            int first = headp[op];
            if (first < 0) continue;
            int chosen = first;
            int64_t ptr = s->rr_ptr[op];
            for (int i = first; i >= 0; i = nextp[i]) {
                int g2 = s->req_g[i];
                int64_t key = (int64_t)s->iv_port[g2] * 64 + s->iv_vc[g2];
                if (key >= ptr) { chosen = i; break; }
            }
            int g = s->req_g[chosen];
            s->rr_ptr[op] =
                (int64_t)s->iv_port[g] * 64 + s->iv_vc[g] + 1;
            do_grant(s, node, g, s->req_ov[chosen], s->req_head[chosen]);
            moved++;
        }
    }
    return moved;
}

/* drop every flit of a message from one node (harsh rip-up / stuck
   purge); mirrors Router.purge_message including the release of a held
   output VC and the unconditional load-token bump */
int k_purge(BState *s, int node, int msg)
{
    int lo = s->iv_off[node], hi = s->iv_off[node + 1];
    int dropped = 0;
    for (int g = lo; g < hi; g++) {
        int c = s->buf_cnt[g], h = s->buf_head[g], w = 0;
        for (int i = 0; i < c; i++) {
            int idx = (h + i) % s->cap;
            if (s->buf_msg[(int64_t)g * s->cap + idx] == msg) {
                dropped++;
            } else {
                int widx = (h + w) % s->cap;
                s->buf_msg[(int64_t)g * s->cap + widx] =
                    s->buf_msg[(int64_t)g * s->cap + idx];
                s->buf_seq[(int64_t)g * s->cap + widx] =
                    s->buf_seq[(int64_t)g * s->cap + idx];
                w++;
            }
        }
        s->buf_cnt[g] = w;
        if (s->inc_val[g] && s->inc_msg[g] == msg) {
            s->inc_val[g] = 0;
            dropped++;
        }
        if (s->head_msg[g] == msg) {
            if (s->o_port[g] > -100) {
                int ovg = s->portbase[SLOT(s, node, s->o_port[g])]
                          + s->o_vc[g];
                if (s->ov_owner[ovg] == g) s->ov_owner[ovg] = -1;
            }
            s->st[g] = 0;
            s->head_msg[g] = -1;
            s->ncand[g] = 0;
            s->deliver[g] = 0;
            s->stuckf[g] = 0;
            s->hint[g] = 0;
            s->o_port[g] = -100;
            s->o_vc[g] = -100;
        }
    }
    s->r_nflits[node] -= dropped;
    s->counters[0]++;
    return dropped;
}

/* purge one message from every router — the object engine's
   drop_message walk over all routers, without n_nodes Python->C
   round-trips (each per-node purge bumps the load token exactly as
   the per-router Router.purge_message does) */
int k_purge_all(BState *s, int msg)
{
    int dropped = 0;
    for (int node = 0; node < s->n_nodes; node++)
        dropped += k_purge(s, node, msg);
    return dropped;
}
""".replace("RESERVE_BYTES", str(DIG_RESERVE))


_CACHED: "tuple | None | bool" = False   # False = not attempted yet


def _cache_dir() -> str:
    override = os.environ.get("REPRO_BATCHED_CACHE")
    if override:
        return override
    return os.path.join(os.path.expanduser("~"), ".cache", "repro-batched")


def _build_so() -> str | None:
    """Compile the kernel (or reuse the hash-cached build); returns the
    shared-object path or None when no compiler is available."""
    cc = (os.environ.get("CC") or shutil.which("cc") or shutil.which("gcc")
          or shutil.which("clang"))
    if cc is None:
        return None
    digest = hashlib.sha256(_SOURCE.encode()).hexdigest()[:16]
    for base in (_cache_dir(), os.path.join(tempfile.gettempdir(),
                                            "repro-batched")):
        try:
            os.makedirs(base, exist_ok=True)
        except OSError:
            continue
        so = os.path.join(base, f"kernel-{digest}.so")
        if os.path.exists(so):
            return so
        src = os.path.join(base, f"kernel-{digest}.c")
        try:
            with open(src, "w") as fh:
                fh.write(_SOURCE)
            tmp = so + f".tmp{os.getpid()}"
            subprocess.run([cc, "-O3", "-shared", "-fPIC", "-o", tmp, src],
                           check=True, capture_output=True)
            os.replace(tmp, so)      # atomic: concurrent builders race safely
            return so
        except (OSError, subprocess.CalledProcessError):
            continue
    return None


def load_kernel():
    """(ffi, lib) for the compiled kernel, or None when unavailable
    (no cffi, no C compiler, or ``REPRO_BATCHED_NO_CC`` set).  The
    result is memoized per process."""
    global _CACHED
    if _CACHED is not False:
        return _CACHED
    _CACHED = None
    if os.environ.get("REPRO_BATCHED_NO_CC"):
        return None
    try:
        import cffi
    except ImportError:      # pragma: no cover - cffi ships with the env
        return None
    so = _build_so()
    if so is None:
        return None
    try:
        ffi = cffi.FFI()
        ffi.cdef(_CDEF)
        lib = ffi.dlopen(so)
    except Exception:        # pragma: no cover - corrupt cache etc.
        return None
    _CACHED = (ffi, lib)
    return _CACHED


def kernel_available() -> bool:
    return load_kernel() is not None

"""Messages, flits and headers for wormhole switching.

"Every message in the network is divided into flits (flow control
units) transmitted in a pipelined fashion" (paper Section 2.2).  The
head flit carries the routing header; body and tail flits follow the
path the head reserved; the tail releases the virtual channels.

The header carries algorithm-specific fields in ``fields`` — the paper
discusses exactly this need: marking messages misrouted due to faults
and maintaining a path-length counter "is best done in the header"
(Section 3, Lifelock Avoidance).
"""

from __future__ import annotations

import itertools
import warnings
from dataclasses import dataclass, field
from enum import IntEnum


class FlitKind(IntEnum):
    HEAD = 0
    BODY = 1
    TAIL = 2
    HEAD_TAIL = 3   # single-flit message


# Fallback allocator for messages created outside a Network (unit
# tests, ad-hoc scripts).  Simulations never touch it: every Network
# owns a private counter and passes explicit ids to Message.create, so
# concurrent networks in one process cannot cross-contaminate ids.
_msg_ids = itertools.count()


def reset_message_ids() -> None:
    """Deprecated shim: restart the module-global fallback counter.

    Message ids are allocated per :class:`~repro.sim.network.Network`
    since the parallel sweep engine landed; a fresh network always
    starts at id 0, so between-run resets are no longer needed.  Kept
    for callers that create bare :class:`Message` objects and want a
    predictable id sequence.
    """
    warnings.warn(
        "reset_message_ids() is deprecated: message ids are per-Network "
        "since the sweep engine landed, so between-run resets are "
        "unnecessary (it only restarts the fallback counter for bare "
        "Message objects)",
        DeprecationWarning, stacklevel=2)
    global _msg_ids
    _msg_ids = itertools.count()


@dataclass
class Header:
    """Routing header carried by the head flit."""

    msg_id: int
    src: int
    dst: int
    length: int                      # flits including head and tail
    created: int                     # cycle of creation at the source
    fields: dict = field(default_factory=dict)

    # Common optional fields read/written by fault-tolerant algorithms:
    #   "misrouted": bool      — set when a detour was taken due to faults
    #   "path_len": int        — hops so far (livelock guard)
    #   "phase": str/int       — multi-phase schemes (ROUTE_C asc/desc)

    def mark_misrouted(self) -> None:
        self.fields["misrouted"] = True

    @property
    def misrouted(self) -> bool:
        return bool(self.fields.get("misrouted", False))

    @property
    def path_len(self) -> int:
        return int(self.fields.get("path_len", 0))

    def bump_path_len(self) -> None:
        self.fields["path_len"] = self.path_len + 1


@dataclass
class Flit:
    kind: FlitKind
    msg_id: int
    seq: int
    header: Header | None = None     # present on HEAD / HEAD_TAIL
    # precomputed at construction: the router checks these per flit per
    # hop, so a plain attribute beats re-deriving them from ``kind``
    is_head: bool = field(init=False)
    is_tail: bool = field(init=False)

    def __post_init__(self):
        self.is_head = self.kind in (FlitKind.HEAD, FlitKind.HEAD_TAIL)
        self.is_tail = self.kind in (FlitKind.TAIL, FlitKind.HEAD_TAIL)


@dataclass
class Message:
    """A message plus its life-cycle bookkeeping."""

    header: Header
    injected: int | None = None      # cycle the head entered the network
    delivered: int | None = None     # cycle the tail was ejected
    hops: int = 0
    dropped: bool = False

    @classmethod
    def create(cls, src: int, dst: int, length: int, cycle: int,
               msg_id: int | None = None, **fields) -> "Message":
        if length < 1:
            raise ValueError("message length must be >= 1 flit")
        if msg_id is None:
            msg_id = next(_msg_ids)
        hdr = Header(msg_id=msg_id, src=src, dst=dst,
                     length=length, created=cycle, fields=dict(fields))
        return cls(header=hdr)

    def flits(self) -> list[Flit]:
        """Materialize the worm."""
        h = self.header
        if h.length == 1:
            return [Flit(FlitKind.HEAD_TAIL, h.msg_id, 0, header=h)]
        out = [Flit(FlitKind.HEAD, h.msg_id, 0, header=h)]
        out.extend(Flit(FlitKind.BODY, h.msg_id, i)
                   for i in range(1, h.length - 1))
        out.append(Flit(FlitKind.TAIL, h.msg_id, h.length - 1))
        return out

    @property
    def latency(self) -> int | None:
        """Creation-to-delivery latency (includes source queueing)."""
        if self.delivered is None:
            return None
        return self.delivered - self.header.created

    @property
    def network_latency(self) -> int | None:
        """Injection-to-delivery latency."""
        if self.delivered is None or self.injected is None:
            return None
        return self.delivered - self.injected

"""Flit-level wormhole network simulator (the evaluation substrate).

Topologies, fail-stop fault model, virtual-channel wormhole routers
with credit flow control and configurable routing-decision latency,
synthetic traffic, and statistics.
"""

from .arbiter import Arbiter, MisroutedFirstArbiter, OldestFirstArbiter, make_arbiter
from .config import SimConfig
from .diagnosis import DiagnosisEngine
from .faults import (FaultEvent, FaultSchedule, FaultState,
                     random_link_faults, random_node_faults)
from .flit import Flit, FlitKind, Header, Message, reset_message_ids
from .network import DeadlockError, Network
from .router import LOCAL, Router
from .stats import StatsCollector
from .watchdog import StallDiagnosis, StalledWorm, diagnose_stall
from .topology import (EAST, NORTH, SOUTH, WEST, Hypercube, KAryNCube,
                       Mesh2D, MeshND, Port, Topology, Torus2D, link_key,
                       topology_from_dict)
from .traffic import PATTERNS, TrafficGenerator

#: re-exported lazily: repro.sim.batched imports the routing layer for
#: its native decision cache, and the routing layer imports repro.sim —
#: resolving the names on first access keeps both import orders working
_BATCHED_EXPORTS = ("BatchedNetwork", "batched_fallback_reason",
                    "build_network")


def __getattr__(name):
    if name in _BATCHED_EXPORTS:
        from . import batched
        return getattr(batched, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "Arbiter", "MisroutedFirstArbiter", "OldestFirstArbiter", "make_arbiter",
    "SimConfig", "DiagnosisEngine", "FaultEvent", "FaultSchedule",
    "FaultState", "random_link_faults", "random_node_faults", "Flit",
    "FlitKind", "Header", "Message", "reset_message_ids", "DeadlockError",
    "Network", "BatchedNetwork", "batched_fallback_reason",
    "build_network", "LOCAL", "Router", "StatsCollector", "StallDiagnosis",
    "StalledWorm", "diagnose_stall", "EAST", "NORTH", "SOUTH", "WEST",
    "Hypercube", "KAryNCube", "Mesh2D", "MeshND", "Port", "Topology",
    "Torus2D", "link_key", "topology_from_dict", "PATTERNS",
    "TrafficGenerator",
]

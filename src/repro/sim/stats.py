"""Simulation statistics: latency, throughput, decision steps.

Measurement windows follow interconnection-network practice: a warm-up
period is excluded, then latency is averaged over messages *created*
inside the measurement window and throughput over flits delivered in
it.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

import numpy as np

from .flit import Message


class DecisionDigest:
    """Canonical running digest of every routing decision in a run.

    Two simulations agree bit-for-bit on routing behaviour iff their
    digests match: each ``route_stage`` decision is folded in as
    ``node|msg_id|deliver|stuck|steps|(port,vc)...`` in the order the
    scheduler made them, so interpreter variants (fastpath, compiled
    table, AST) can be compared without storing full decision logs.
    """

    __slots__ = ("_hash", "count")

    def __init__(self) -> None:
        self._hash = hashlib.sha256()
        self.count = 0

    def update(self, node: int, msg_id: int, decision) -> None:
        parts = [str(node), str(msg_id), "1" if decision.deliver else "0",
                 "1" if decision.stuck else "0", str(decision.steps)]
        parts.extend(f"{p}.{v}" for p, v in decision.candidates)
        self._hash.update(("|".join(parts) + "\n").encode())
        self.count += 1

    def update_raw(self, data: bytes, lines: int) -> None:
        """Fold in pre-formatted decision lines (the batched engine's
        C-side formatter emits byte-identical lines in decision order
        and flushes them here once per cycle)."""
        self._hash.update(data)
        self.count += lines

    def hexdigest(self) -> str:
        return self._hash.hexdigest()


@dataclass
class StatsCollector:
    warmup: int = 0
    now: int = 0

    flit_hops: int = 0
    flits_delivered: int = 0
    flits_delivered_measured: int = 0
    messages_delivered: int = 0
    messages_dropped: int = 0
    messages_unroutable: int = 0
    messages_stuck: int = 0
    messages_retried: int = 0
    messages_dead_lettered: int = 0
    decisions: int = 0
    decision_steps: int = 0
    max_decision_steps: int = 0
    _latencies: list[int] = field(default_factory=list)
    _network_latencies: list[int] = field(default_factory=list)
    _hops: list[int] = field(default_factory=list)
    _misrouted: int = 0
    #: delivery_cycle - first_drop_cycle of every message that was
    #: ripped up / stranded and later delivered by a retransmission
    _recovery_times: list[int] = field(default_factory=list)
    #: attached :class:`~repro.obs.metrics.MetricsTimeseries` (set by
    #: the network when one is configured; None keeps summaries
    #: bit-identical to the unobserved simulator)
    timeseries: object | None = None
    #: attached :class:`DecisionDigest` (opt-in, e.g. by the conformance
    #: harness; None keeps summaries bit-identical to undigested runs)
    digest: DecisionDigest | None = None
    #: why a ``SimConfig(engine="batched")`` request fell back to the
    #: object engine (set by :func:`repro.sim.batched.build_network`;
    #: None — and no summary key — when no fallback happened, so
    #: unaffected summaries stay bit-identical)
    engine_fallback: str | None = None
    #: fast-reroute counters (set by the network only when
    #: ``backup_routes`` is on; None keeps every other summary
    #: bit-identical): worms_healed, worms_absorbed,
    #: backup_route_decisions
    reroute: dict | None = None

    # -- recording -----------------------------------------------------

    def count_flit_hop(self) -> None:
        self.flit_hops += 1

    def count_decision(self, steps: int) -> None:
        self.decisions += 1
        self.decision_steps += steps
        if steps > self.max_decision_steps:
            self.max_decision_steps = steps

    def count_delivered_flit(self) -> None:
        self.flits_delivered += 1
        if self.now >= self.warmup:
            self.flits_delivered_measured += 1

    def count_message(self, msg: Message) -> None:
        self.messages_delivered += 1
        if msg.header.created >= self.warmup:
            lat = msg.latency
            nlat = msg.network_latency
            if lat is not None:
                self._latencies.append(lat)
            if nlat is not None:
                self._network_latencies.append(nlat)
            self._hops.append(msg.hops)
            if msg.header.misrouted:
                self._misrouted += 1

    def count_dropped(self) -> None:
        self.messages_dropped += 1

    def count_unroutable(self) -> None:
        self.messages_unroutable += 1

    def count_retried(self) -> None:
        self.messages_retried += 1

    def count_dead_letter(self) -> None:
        self.messages_dead_lettered += 1

    def count_recovery(self, cycles: int) -> None:
        self._recovery_times.append(cycles)

    # -- summaries -----------------------------------------------------------

    @property
    def mean_latency(self) -> float:
        return float(np.mean(self._latencies)) if self._latencies else float("nan")

    @property
    def mean_network_latency(self) -> float:
        return (float(np.mean(self._network_latencies))
                if self._network_latencies else float("nan"))

    @property
    def p99_latency(self) -> float:
        return (float(np.percentile(self._latencies, 99))
                if self._latencies else float("nan"))

    @property
    def mean_hops(self) -> float:
        return float(np.mean(self._hops)) if self._hops else float("nan")

    @property
    def misrouted_fraction(self) -> float:
        n = len(self._hops)
        return self._misrouted / n if n else 0.0

    @property
    def mean_decision_steps(self) -> float:
        return self.decision_steps / self.decisions if self.decisions else 0.0

    @property
    def messages_recovered(self) -> int:
        return len(self._recovery_times)

    @property
    def mean_time_to_recover(self) -> float:
        # 0.0 (not nan) when nothing recovered, so summaries stay
        # comparable with ==
        return (float(np.mean(self._recovery_times))
                if self._recovery_times else 0.0)

    @property
    def max_time_to_recover(self) -> int:
        return max(self._recovery_times, default=0)

    def throughput(self, n_nodes: int) -> float:
        """Delivered flits per node per cycle over the measured window."""
        cycles = max(1, self.now - self.warmup)
        return self.flits_delivered_measured / (cycles * n_nodes)

    def measured_messages(self) -> int:
        return len(self._latencies)

    def summary(self, n_nodes: int) -> dict:
        out = self._summary(n_nodes)
        if self.timeseries is not None:
            out["metrics"] = self.timeseries.to_dict()
        if self.digest is not None:
            out["decision_digest"] = self.digest.hexdigest()
            out["decision_digest_count"] = self.digest.count
        if self.engine_fallback is not None:
            out["engine_fallback"] = self.engine_fallback
        if self.reroute is not None:
            out["reroute"] = dict(self.reroute)
        return out

    def _summary(self, n_nodes: int) -> dict:
        return {
            "cycles": self.now,
            "messages_delivered": self.messages_delivered,
            "messages_measured": self.measured_messages(),
            "messages_dropped": self.messages_dropped,
            "messages_unroutable": self.messages_unroutable,
            "messages_stuck": self.messages_stuck,
            "messages_retried": self.messages_retried,
            "messages_dead_lettered": self.messages_dead_lettered,
            "messages_recovered": self.messages_recovered,
            "mean_time_to_recover": self.mean_time_to_recover,
            "max_time_to_recover": self.max_time_to_recover,
            "mean_latency": self.mean_latency,
            "mean_network_latency": self.mean_network_latency,
            "p99_latency": self.p99_latency,
            "mean_hops": self.mean_hops,
            "misrouted_fraction": self.misrouted_fraction,
            "throughput_flits_node_cycle": self.throughput(n_nodes),
            "decisions": self.decisions,
            "mean_decision_steps": self.mean_decision_steps,
            "max_decision_steps": self.max_decision_steps,
        }

"""Health watchdog: structured diagnosis of a stalled network.

When no flit moves for ``deadlock_threshold`` cycles, the network used
to raise a bare ``DeadlockError`` string — useless for debugging a
routing algorithm or a chaos scenario.  This module snapshots the stall
instead:

* every **stalled worm**: where its head sits (node, input port/VC),
  its allocation state, the output it holds or wants, and which worms
  it is waiting on;
* the **holding nodes** — routers with flits parked in them;
* the **blocking cycle**, if one exists, found in the runtime wait-for
  graph over worms.  The cycle is also reported as the channel chain
  ``(node, out_port, vc)`` — the same channel vocabulary as the static
  CDG analysis in :mod:`repro.analysis.deadlock`, so a runtime cycle
  can be cross-checked against the algorithm's dependency graph.

A stall with pending fault detections or an in-flight diagnosis flood
is *expected* (worms legitimately park on a dying link until the
Information Units confirm it); the network suppresses the watchdog
while either is outstanding and the diagnosis records it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from .router import ACTIVE, LOCAL, ROUTED

if TYPE_CHECKING:  # pragma: no cover
    from .network import Network

Channel = tuple[int, int, int]    # (node, out_port, vc) — as in analysis


@dataclass
class StalledWorm:
    """One worm's head position and blocking relation at stall time."""

    msg_id: int
    src: int
    dst: int
    node: int                     # router holding the head
    in_port: int
    in_vc: int
    state: str                    # router allocation state of the head VC
    flits_here: int               # flits of this worm buffered at node
    out_port: int | None = None   # held (ACTIVE) or first-wanted (ROUTED)
    out_vc: int | None = None
    waiting_on: list[int] = field(default_factory=list)   # msg_ids
    reason: str = ""              # "contended" | "dead-port" | "no-route"

    def held_channel(self) -> Channel | None:
        if self.state == ACTIVE and self.out_port is not None \
                and self.out_port != LOCAL:
            return (self.node, self.out_port, self.out_vc or 0)
        return None


@dataclass
class StallDiagnosis:
    """Structured picture of why the network stopped making progress."""

    cycle: int
    last_progress: int
    flits_in_flight: int
    worms: list[StalledWorm]
    holding_nodes: list[int]
    blocking_cycle: list[int] | None          # msg_ids around the cycle
    cycle_channels: list[Channel] | None      # their held channels
    pending_detections: int = 0
    diagnosis_in_flight: bool = False

    def summary(self) -> dict:
        return {
            "cycle": self.cycle,
            "last_progress": self.last_progress,
            "flits_in_flight": self.flits_in_flight,
            "stalled_worms": len(self.worms),
            "holding_nodes": self.holding_nodes,
            "blocking_cycle": self.blocking_cycle,
            "cycle_channels": self.cycle_channels,
            "pending_detections": self.pending_detections,
            "diagnosis_in_flight": self.diagnosis_in_flight,
        }

    def describe(self) -> str:
        lines = [
            f"no progress since cycle {self.last_progress} "
            f"(now {self.cycle}) with {self.flits_in_flight} flits in "
            f"flight on {len(self.holding_nodes)} nodes",
        ]
        for w in sorted(self.worms, key=lambda w: w.msg_id):
            where = (f"out={w.out_port}/vc{w.out_vc}"
                     if w.out_port is not None else "unrouted")
            waits = (f" waiting on {sorted(set(w.waiting_on))}"
                     if w.waiting_on else "")
            lines.append(
                f"  worm {w.msg_id} ({w.src}->{w.dst}) at node {w.node} "
                f"in={w.in_port}/vc{w.in_vc} [{w.state}] {where} "
                f"({w.reason}){waits}")
        if self.blocking_cycle:
            chain = " -> ".join(str(m) for m in self.blocking_cycle)
            lines.append(f"  blocking cycle: {chain} -> "
                         f"{self.blocking_cycle[0]}")
            if self.cycle_channels:
                lines.append("  cycle channels (node,out_port,vc): "
                             + ", ".join(map(str, self.cycle_channels)))
        else:
            lines.append("  no wait-for cycle: the stall is a resource "
                         "starvation or an unconfirmed fault, not a "
                         "classic deadlock")
        if self.pending_detections:
            lines.append(f"  ({self.pending_detections} fault detections "
                         f"still pending)")
        return "\n".join(lines)


def _find_cycle(graph: dict[int, list[int]]) -> list[int] | None:
    """First directed cycle in a small adjacency dict (iterative DFS
    with colouring); returns the node sequence around the cycle."""
    WHITE, GREY, BLACK = 0, 1, 2
    colour = {n: WHITE for n in graph}
    parent: dict[int, int] = {}
    for root in graph:
        if colour[root] != WHITE:
            continue
        stack: list[tuple[int, int]] = [(root, 0)]
        colour[root] = GREY
        while stack:
            node, idx = stack[-1]
            succs = graph.get(node, [])
            if idx < len(succs):
                stack[-1] = (node, idx + 1)
                nxt = succs[idx]
                if colour.get(nxt, BLACK) == WHITE:
                    colour[nxt] = GREY
                    parent[nxt] = node
                    stack.append((nxt, 0))
                elif colour.get(nxt) == GREY:
                    # unwind the parent chain back to nxt
                    cyc = [node]
                    cur = node
                    while cur != nxt:
                        cur = parent[cur]
                        cyc.append(cur)
                    cyc.reverse()
                    return cyc
            else:
                colour[node] = BLACK
                stack.pop()
    return None


def diagnose_stall(network: "Network") -> StallDiagnosis:
    """Snapshot every stalled worm and find the blocking cycle (if any)
    in the runtime wait-for graph."""
    worms: dict[int, StalledWorm] = {}
    #: every channel each worm's ACTIVE segments hold (a worm spans
    #: several routers; the kept StalledWorm entry is only its front)
    held: dict[int, list[Channel]] = {}
    holding: set[int] = set()

    def owner_msg(router, pid: int, vc: int) -> int | None:
        """msg_id of the worm currently blocking output (pid, vc)."""
        ov = router.output_vcs[pid][vc]
        if ov.owner is not None:
            holder = router.input_vcs[ov.owner[0]][ov.owner[1]]
            if holder.header is not None:
                return holder.header.msg_id
            return None
        if pid == LOCAL:
            return None
        down_iv = router._down[pid][1][vc]
        if len(down_iv.buffer) + len(down_iv.incoming) >= down_iv.capacity:
            front = down_iv.buffer[0] if down_iv.buffer else None
            return front.msg_id if front is not None else None
        return None

    for router in network.routers:
        if router.n_flits == 0:
            continue
        holding.add(router.node)
        for iv in router._ivs:
            n_here = len(iv.buffer) + len(iv.incoming)
            if n_here == 0 and iv.state not in (ROUTED, ACTIVE):
                continue
            hdr = iv.header
            if hdr is None:
                front = iv.buffer[0] if iv.buffer else None
                if front is None or front.header is None:
                    continue   # body flits mid-stream; head is elsewhere
                hdr = front.header
            w = StalledWorm(
                msg_id=hdr.msg_id, src=hdr.src, dst=hdr.dst,
                node=router.node, in_port=iv.port, in_vc=iv.vc,
                state=iv.state, flits_here=n_here)
            if iv.state == ACTIVE:
                w.out_port, w.out_vc = iv.out_port, iv.out_vc
                if iv.out_port != LOCAL \
                        and not router.port_alive(iv.out_port):
                    w.reason = "dead-port"
                else:
                    w.reason = "contended"
                    blocker = owner_msg(router, iv.out_port, iv.out_vc or 0)
                    if blocker is not None and blocker != hdr.msg_id:
                        w.waiting_on.append(blocker)
            elif iv.state == ROUTED and iv.decision is not None:
                cands = iv.decision.candidates
                if cands:
                    w.out_port, w.out_vc = cands[0]
                    w.reason = "contended"
                    for pid, vc in cands:
                        blocker = owner_msg(router, pid, vc)
                        if blocker is not None and blocker != hdr.msg_id:
                            w.waiting_on.append(blocker)
                else:
                    w.reason = "no-route"
            else:
                w.reason = "contended"
            if (ch := w.held_channel()) is not None:
                held.setdefault(hdr.msg_id, []).append(ch)
            # one entry per worm: a worm spans several routers, one
            # segment per hop.  Keep the *front* segment (the one whose
            # buffer still holds the head flit — where the worm's next
            # move is decided) and union the wait-for edges from every
            # segment, so an upstream ACTIVE tail seen first cannot
            # shadow the head's blockers.
            is_front = any(f.is_head for f in list(iv.buffer)
                           + list(iv.incoming))
            prev = worms.get(hdr.msg_id)
            if prev is None:
                worms[hdr.msg_id] = w
            else:
                keep, other = (w, prev) if is_front else (prev, w)
                keep.waiting_on = sorted(set(keep.waiting_on)
                                         | set(other.waiting_on))
                keep.flits_here = prev.flits_here + w.flits_here
                worms[hdr.msg_id] = keep

    graph = {m: [b for b in w.waiting_on if b in worms]
             for m, w in worms.items()}
    cyc = _find_cycle(graph)
    channels = None
    if cyc:
        channels = [ch for m in cyc for ch in held.get(m, [])]
    return StallDiagnosis(
        cycle=network.cycle,
        last_progress=network._last_progress,
        flits_in_flight=network._flits_in_flight(),
        worms=list(worms.values()),
        holding_nodes=sorted(holding),
        blocking_cycle=cyc,
        cycle_channels=channels,
        pending_detections=len(network._pending_detections),
        diagnosis_in_flight=bool(network.diagnosis is not None
                                 and network.diagnosis.pending()),
    )

"""The network: routers + links + fault handling + the cycle loop.

One ``Network.step()`` advances every router through the cycle phases:

1. flush staged incoming flits into buffers (1-cycle link latency),
2. inject source-queue flits through local ports,
3. routing stage (decision latency in interpretation steps),
4. virtual-channel + switch allocation, flit transfers, ejection,
5. fault schedule processing and progress watchdog.

Fault handling implements the paper's assumption iv ("no message is
affected during the diagnosis phase"): in ``quiesce`` mode injection
pauses and the network drains before a dynamic fault is applied and the
routing algorithm's distributed state is recomputed atomically.  The
``harsh`` mode instead rips up worms caught on the dying link — the
situation the paper notes must otherwise be solved by re-injection.

The reliability layer (all opt-in, see :class:`~repro.sim.config.
SimConfig`) refines the harsh mode into an end-to-end story:

* ``diagnosis_hop_delay`` replaces the instant global fault knowledge
  with per-node fault views updated by a hop-by-hop notification flood
  (:mod:`repro.sim.diagnosis`); the algorithm's distributed state is
  recomputed when the flood converges;
* ``retry_limit``/``retry_backoff`` return ripped-up or stranded
  messages to their source and retransmit them with exponential
  backoff once the source's local view confirms the fault, with
  dead-letter accounting when the attempt cap is exhausted;
* a stall raises a :class:`DeadlockError` carrying a structured
  :class:`~repro.sim.watchdog.StallDiagnosis` instead of a bare string.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field
from heapq import heappop, heappush
from typing import TYPE_CHECKING

from ..obs import events as trace_ev
from ..obs.tracer import NULL_TRACER
from .config import SimConfig
from .diagnosis import DiagnosisEngine
from .faults import FaultEvent, FaultSchedule, FaultState
from .flit import Flit, Message
from .router import ACTIVE, IDLE, LOCAL, Router
from .stats import StatsCollector
from .arbiter import Arbiter, make_arbiter
from .topology import Topology

if TYPE_CHECKING:  # pragma: no cover
    from ..routing.base import RoutingAlgorithm
    from .watchdog import StallDiagnosis


class DeliveryError(RuntimeError):
    """A flit was ejected at a node other than its destination —
    always a routing-algorithm bug, never a legitimate outcome."""


class DeadlockError(RuntimeError):
    """No flit moved for ``deadlock_threshold`` cycles while worms were
    in flight — a routing-algorithm deadlock (or a livelock so slow it
    is indistinguishable from one).  ``diagnosis`` carries the
    structured :class:`~repro.sim.watchdog.StallDiagnosis` when the
    stall happened inside a live network (None for e.g. a failed
    quiesce drain guard)."""

    def __init__(self, message: str,
                 diagnosis: "StallDiagnosis | None" = None):
        super().__init__(message)
        self.diagnosis = diagnosis


def _fault_payload(event: FaultEvent) -> dict:
    """JSON-able trace payload for a fault event (the key is ``fault``,
    not ``kind`` — ``kind`` names the trace-event type itself)."""
    target = (list(event.target) if event.kind == "link"
              else int(event.target))
    return {"fault": event.kind, "target": target}


@dataclass
class _SourceState:
    queue: deque = field(default_factory=deque)     # pending Messages
    current: list[Flit] = field(default_factory=list)  # worm being injected
    current_msg: Message | None = None


class Network:
    #: which engine implements the data path ("object" here; the
    #: batched subclass overrides it) — lets runners and reports record
    #: what actually ran after build_network()'s fallback rules
    engine_name = "object"

    def __init__(self, topology: Topology, algorithm: "RoutingAlgorithm",
                 config: SimConfig | None = None,
                 arbiter: str | Arbiter = "round_robin",
                 tracer=None, metrics=None):
        algorithm.check_topology(topology)
        self.topology = topology
        self.algorithm = algorithm
        self.config = config or SimConfig()
        if self.config.backup_routes:
            # LFA-style fast reroute: wrap the algorithm with its
            # precompiled backup subbases now — before any failure —
            # so _confirm_fault can arm them with a pure set insert
            from ..routing.backup import FastReroute
            if not isinstance(algorithm, FastReroute):
                algorithm = FastReroute(algorithm, topology)
            self.algorithm = algorithm
        # output-selection policy over each decision's legal candidate
        # list (repro.routing.select).  None for the default
        # "deterministic": the route stage then skips the hook with one
        # attribute check, keeping the seed behaviour bit-identical.
        self.policy = None
        if self.config.policy != "deterministic":
            from ..routing.select import make_policy
            self.policy = make_policy(self.config.policy,
                                      seed=self.config.policy_seed)
            self.policy.reset(self)
        # observability (see repro.obs): the tracer is always present —
        # NULL_TRACER's enabled=False keeps every emission site to one
        # attribute check; metrics is None unless a timeseries is
        # attached
        self.tracer = NULL_TRACER if tracer is None else tracer
        self.metrics = metrics
        self.faults = FaultState(topology)
        # the routers' *knowledge* of the fault set: an alias of the
        # ground truth unless a detection delay or a per-node diagnosis
        # protocol is configured, in which case the Information Units
        # confirm faults only after the heartbeat timeout (paper
        # Fig. 3: "they could produce and check heartbeat messages")
        # and/or the notification flood
        if self.config.detection_delay or self.config.diagnosis_hop_delay:
            self.known_faults = FaultState(topology)
        else:
            self.known_faults = self.faults
        # per-node fault views updated by hop-by-hop flooding; None
        # means instant global knowledge (fault_view() then answers
        # every node with known_faults)
        self.diagnosis: DiagnosisEngine | None = None
        if self.config.diagnosis_hop_delay:
            self.diagnosis = DiagnosisEngine(
                topology, self.faults, self.config.diagnosis_hop_delay,
                tracer=self.tracer)
        self._pending_detections: list[tuple[int, object]] = []
        # source-retransmission queue: (release_cycle, seq, src, dst,
        # length, header fields) min-heap; seq keeps ties stable
        self._pending_retries: list[tuple] = []
        self._retry_seq = itertools.count()
        #: root msg_ids that exhausted their retry budget (or whose
        #: source can never learn of / route around the fault)
        self.dead_letters: list[int] = []
        #: per dynamic harsh-mode fault: occurrence, confirmation
        #: (detection at the site) and convergence (global knowledge)
        #: cycles — the raw material of the recovery-gap metrics
        self.fault_log: list[dict] = []
        self._fault_log_ix: dict = {}
        self.stats = StatsCollector()
        if self.config.backup_routes:
            # conditional so summaries of non-backup runs stay
            # bit-identical (same convention as engine_fallback)
            self.stats.reroute = {"worms_healed": 0, "worms_absorbed": 0,
                                  "backup_route_decisions": 0}
        if metrics is not None:
            # summaries grow a "metrics" key only when a timeseries is
            # attached — the unobserved summary stays bit-identical
            self.stats.timeseries = metrics
        self.cycle = 0
        # advances whenever buffer contents or VC ownership change;
        # routers key their output_load memo on it
        self._load_token = 0
        # advances whenever the routing algorithm's fault knowledge is
        # recomputed; non-adaptive blocked heads re-route only then
        self.route_epoch = 0
        self.routers: list[Router] = []
        self._make_routers()
        # nodes whose router may hold flits / whose source may inject —
        # the active sets the per-cycle phases iterate (stale entries
        # are pruned lazily; see _live_routers)
        self._active: set[int] = set()
        self._active_sources: set[int] = set()
        self.sources = [_SourceState() for _ in topology.nodes()]
        # private message-id allocator: every network numbers its
        # messages from 0, so concurrent networks in one process (and
        # sweep points fanned out over worker processes) produce
        # identical, isolated id sequences
        self._msg_ids = itertools.count()
        self.messages: dict[int, Message] = {}
        self.fault_schedule = FaultSchedule()
        self.traffic = None
        self._eject_progress: dict[int, int] = {}  # msg_id -> flits ejected
        self._last_progress = 0
        self._injection_paused = False
        self.arbiter = (arbiter if isinstance(arbiter, Arbiter)
                        else make_arbiter(arbiter))
        algorithm.reset(self)

    def _make_routers(self) -> None:
        """Build the per-node router state into ``self.routers``.  The
        batched engine (:mod:`repro.sim.batched`) overrides this to
        construct its struct-of-arrays state plus router facades."""
        self.routers = [Router(self, n) for n in self.topology.nodes()]
        for r in self.routers:
            r.finalize()

    # -- configuration ------------------------------------------------------

    def attach_traffic(self, traffic) -> None:
        self.traffic = traffic

    def schedule_faults(self, schedule: FaultSchedule) -> None:
        schedule.validate(self.topology)
        self.fault_schedule = schedule
        for ev in schedule.due(0):
            self._apply_fault_now(ev)
            if self.known_faults is not self.faults:
                # faults present at boot are already diagnosed: the
                # detection delay / flood model *dynamic* failures only
                self.known_faults.apply(ev)
            if self.diagnosis is not None:
                self.diagnosis.seed_boot(ev)
        if schedule.due(0):
            self.route_epoch += 1
            self.algorithm.on_fault_update(self)

    def fault_view(self, node: int) -> FaultState:
        """The fault set as *this node* currently knows it.  With the
        diagnosis protocol disabled every node shares the global
        ``known_faults`` (instant flooding)."""
        if self.diagnosis is not None:
            return self.diagnosis.views[node]
        return self.known_faults

    def set_warmup(self, cycles: int) -> None:
        self.stats.warmup = cycles

    # -- message injection -----------------------------------------------------

    def offer(self, src: int, dst: int, length: int, **fields) -> Message | None:
        """Create a message at a source node.  Honours assumption iii:
        messages to dead or disconnected destinations are refused and
        counted as unroutable.  With the per-node diagnosis protocol
        the *source's local view* does the screening — a source that
        has not yet heard of a fault will happily inject into it (and
        the message is then ripped up and retransmitted)."""
        tr = self.tracer
        if not self.faults.node_ok(src):
            self.stats.count_unroutable()
            if tr.enabled:
                tr.emit(trace_ev.WORM_BLOCKED, src=src, dst=dst,
                        reason="source_dead")
            return None
        screen = (self.faults if self.diagnosis is None
                  else self.diagnosis.views[src])
        if not screen.node_ok(dst) or not screen.connected(src, dst):
            self.stats.count_unroutable()
            if tr.enabled:
                tr.emit(trace_ev.WORM_BLOCKED, src=src, dst=dst,
                        reason="destination_unreachable")
            return None
        if not self.algorithm.accepts(src, dst):
            self.stats.count_unroutable()
            if tr.enabled:
                tr.emit(trace_ev.WORM_BLOCKED, src=src, dst=dst,
                        reason="algorithm_refused")
            return None
        msg = Message.create(src, dst, length, self.cycle,
                             msg_id=next(self._msg_ids), **fields)
        self.messages[msg.header.msg_id] = msg
        self.sources[src].queue.append(msg)
        self._active_sources.add(src)
        if tr.enabled:
            tr.emit(trace_ev.WORM_CREATED, msg_id=msg.header.msg_id,
                    src=src, dst=dst, length=length)
        return msg

    def _inject_phase(self) -> None:
        vc = self.config.injection_vc
        if self.config.active_scheduling:
            # ascending node order matches the full enumerate() scan
            nodes = sorted(self._active_sources)
        else:
            nodes = range(len(self.sources))
        for node in nodes:
            src = self.sources[node]
            if not src.current and not src.queue:
                self._active_sources.discard(node)
                continue
            if not self.faults.node_ok(node):
                continue
            if not src.current and src.queue:
                if self._injection_paused:
                    # quiescing for a fault: no new worms start, but
                    # half-injected worms must finish entering or the
                    # network can never drain
                    continue
                msg = src.queue.popleft()
                src.current = msg.flits()
                src.current_msg = msg
            if not src.current:
                continue
            router = self.routers[node]
            iv = router.input_vcs[LOCAL][vc]
            if len(iv.buffer) + len(iv.incoming) < iv.capacity:
                flit = src.current.pop(0)
                iv.incoming.append(flit)  # enters the buffer next cycle
                router.n_flits += 1
                router._has_incoming = True
                self._active.add(node)
                if flit.is_head:
                    assert src.current_msg is not None
                    src.current_msg.injected = self.cycle
                    tr = self.tracer
                    if tr.enabled:
                        tr.emit(trace_ev.WORM_INJECT, msg_id=flit.msg_id,
                                node=node)
                if not src.current:
                    src.current_msg = None

    # -- ejection ------------------------------------------------------------------

    def eject(self, node: int, flit: Flit, cycle: int) -> None:
        self.stats.count_delivered_flit()
        msg = self.messages.get(flit.msg_id)
        if msg is None:  # pragma: no cover - defensive
            return
        if flit.is_tail:
            msg.delivered = cycle
            msg.hops = msg.header.path_len
            if msg.header.dst != node:
                raise DeliveryError(
                    f"message {msg.header.msg_id} for node {msg.header.dst} "
                    f"was delivered at node {node}")
            self.stats.count_message(msg)
            tr = self.tracer
            if tr.enabled:
                tr.emit(trace_ev.WORM_DELIVER, msg_id=msg.header.msg_id,
                        src=msg.header.src, dst=node,
                        injected=msg.injected, created=msg.header.created,
                        hops=msg.hops,
                        attempt=int(msg.header.fields.get("attempt", 0)))
            first_dropped = msg.header.fields.get("first_dropped")
            if first_dropped is not None:
                # a retransmitted copy made it: time-to-recover is the
                # first rip-up of the original to this delivery
                self.stats.count_recovery(cycle - int(first_dropped))

    # -- cycle loop ---------------------------------------------------------------------

    def step(self) -> None:
        self.stats.now = self.cycle
        tr = self.tracer
        if tr.enabled:
            tr.now = self.cycle
        if self.fault_schedule.events:
            for ev in self.fault_schedule.due(self.cycle):
                if self.cycle == 0:
                    continue  # applied by schedule_faults
                self.apply_fault(ev)
        if self._pending_detections:
            due = [e for c, e in self._pending_detections if c <= self.cycle]
            self._pending_detections = [
                (c, e) for c, e in self._pending_detections if c > self.cycle]
            for ev in due:
                self._confirm_fault(ev)
        if self.diagnosis is not None and self.diagnosis.pending():
            for ev, reached in self.diagnosis.deliver_due(self.cycle):
                # the flood converged: the fault is globally diagnosed
                self.known_faults.apply(ev)
                self.route_epoch += 1
                self._last_progress = self.cycle
                if tr.enabled:
                    tr.emit(trace_ev.FAULT_CONVERGED,
                            nodes_reached=len(reached),
                            **_fault_payload(ev))
                self.algorithm.on_fault_update(self, nodes=reached)
                rec = self._fault_log_ix.get(ev)
                if rec is not None:
                    rec["converged"] = self.cycle
                if self.config.backup_routes and ev.kind == "link":
                    # slow path converged: the globally reconfigured
                    # primary rules replace the backup subbase
                    self.algorithm.disarm(ev.target)
        if self._pending_retries:
            self._release_due_retries()
        moved = self._advance(with_traffic=True)
        if moved:
            self._last_progress = self.cycle
        elif self._flits_in_flight() and (
                self.cycle - self._last_progress
                > self.config.deadlock_threshold) \
                and not self._stall_excused():
            diag = self._diagnose_stall()
            if tr.enabled:
                tr.emit(trace_ev.SIM_DEADLOCK,
                        algorithm=self.algorithm.name,
                        stalled=len(diag.worms))
            raise DeadlockError(
                f"algorithm {self.algorithm.name}: " + diag.describe(),
                diagnosis=diag)
        metrics = self.metrics
        if metrics is not None and self.cycle % metrics.stride == 0:
            metrics.sample(self)
        self.cycle += 1

    def _advance(self, with_traffic: bool) -> int:
        """One pass through the data-path phases: flush, inject, offer
        traffic, route stage, allocation/transfer.  Returns the number
        of flits moved.  The batched engine overrides this with its
        array kernels; everything around it (fault machinery, watchdog,
        drain loops) is engine-agnostic."""
        routers = self._live_routers()
        for r in routers:
            r.flush_incoming()
        self._inject_phase()
        if with_traffic and self.traffic is not None \
                and not self._injection_paused:
            for src, dst, length in self.traffic.tick(self.cycle):
                self.offer(src, dst, length)
        for r in routers:
            r.route_stage(self.cycle)
        return self._allocate_and_transfer(routers)

    def _stall_excused(self) -> bool:
        """Worms legitimately park while a fault detection or a
        notification flood is outstanding — the watchdog waits for the
        diagnosis machinery to finish before calling a stall a
        deadlock."""
        if self._pending_detections:
            return True
        return self.diagnosis is not None and self.diagnosis.pending()

    def _diagnose_stall(self) -> "StallDiagnosis":
        from .watchdog import diagnose_stall
        return diagnose_stall(self)

    def _live_routers(self) -> list[Router]:
        """The routers that can act this cycle.  With active scheduling
        only those holding flits are visited, in ascending node order —
        the same relative order as the full scan, and flit-free routers
        contribute nothing to any phase, so the schedule is
        cycle-accurate either way.  Routers that gain their first flit
        mid-cycle (injection or a neighbour's grant) need no phase this
        cycle: the flit sits in ``incoming`` until the next flush."""
        routers = self.routers
        if not self.config.active_scheduling:
            return routers
        active = self._active
        stale = [n for n in active if routers[n].n_flits == 0]
        if stale:
            active.difference_update(stale)
        return [routers[n] for n in sorted(active)]

    def _allocate_and_transfer(self, routers: list[Router] | None = None
                               ) -> int:
        moved = 0
        node_ok = self.faults.node_ok
        arbiter = self.arbiter
        # the stock round-robin arbiter's single-request outcome is a
        # pure pointer write we can inline; subclasses (oldest-first
        # keeps its pointer untouched for header-carrying requests) must
        # keep going through choose()
        plain_rr = type(arbiter) is Arbiter
        pointers = arbiter._pointers
        cycle = self.cycle
        for r in (self.routers if routers is None else routers):
            if not node_ok(r.node):
                continue
            requests = r.collect_requests()
            if not requests:
                continue
            if len(requests) == 1:
                # uncontended router: skip the grouping machinery (the
                # arbiter's round-robin pointer still advances exactly
                # as in the general path)
                req = requests[0]
                if plain_rr:
                    pointers[req.out_port] = req.in_port * 64 + req.in_vc + 1
                else:
                    arbiter.choose(req.out_port, requests)
                r.grant(req, cycle)
                moved += 1
                continue
            # every input VC files at most one request per cycle (see
            # collect_requests), so granting once per output group
            # automatically honours the one-flit-per-input constraint
            by_output: dict[int, list] = {}
            for req in requests:
                by_output.setdefault(req.out_port, []).append(req)
            tr = self.tracer
            for out_port in sorted(by_output):
                group = by_output[out_port]
                req = arbiter.choose(out_port, group)
                if tr.enabled and len(group) > 1:
                    tr.emit(trace_ev.LINK_ARB, node=r.node,
                            out_port=out_port,
                            winner=(req.header.msg_id
                                    if req.header is not None else None),
                            contenders=len(group))
                r.grant(req, cycle)
                moved += 1
        return moved

    def run(self, cycles: int) -> None:
        for _ in range(cycles):
            self.step()

    def run_until_drained(self, max_cycles: int = 200_000) -> None:
        """Step until no flits remain anywhere — sources, pending
        retransmissions and the diagnosis machinery included."""
        for _ in range(max_cycles):
            if not self._flits_in_flight() and not self._pending_sources() \
                    and not self._pending_retries \
                    and not self._pending_detections \
                    and not (self.diagnosis is not None
                             and self.diagnosis.pending()):
                return
            self.step()
        diag = self._diagnose_stall()
        raise DeadlockError(f"network failed to drain within {max_cycles} "
                            f"cycles\n" + diag.describe(), diagnosis=diag)

    # -- fault application ------------------------------------------------------------------

    def apply_fault(self, event) -> None:
        if self.config.fault_mode == "quiesce":
            self._drain_for_fault()
            self._apply_fault_now(event)
            self.route_epoch += 1
            self.algorithm.on_fault_update(self)
            return
        # harsh mode: the physical fault is immediate ...
        self._apply_fault_now(event)
        rec = {"kind": event.kind,
               "target": (list(event.target) if event.kind == "link"
                          else int(event.target)),
               "cycle": self.cycle, "confirmed": None, "converged": None,
               "fast_reroute": bool(self.config.backup_routes
                                    and event.kind == "link")}
        self.fault_log.append(rec)
        self._fault_log_ix[event] = rec
        if self.config.detection_delay:
            # ... but the routers only learn of it after the heartbeat
            # timeout; worms caught on the link stall until then
            self._pending_detections.append(
                (self.cycle + self.config.detection_delay, event))
        else:
            self._confirm_fault(event)

    def _confirm_fault(self, event) -> None:
        """Detection completes at the fault site: rip up stalled worms,
        then either flood the notification (per-node diagnosis) or —
        with instant flooding — update the known fault set and
        recompute the distributed algorithm state right away."""
        tr = self.tracer
        if tr.enabled:
            tr.emit(trace_ev.FAULT_DETECT, **_fault_payload(event))
        rec = self._fault_log_ix.get(event)
        if rec is not None:
            rec["confirmed"] = self.cycle
        backups = self.config.backup_routes and event.kind == "link"
        if backups:
            # fast path: the endpoints switch to the precompiled backup
            # subbase the moment detection completes — no flooding
            # round-trip.  Worms caught on the link are healed and
            # locally re-injected instead of ripped up.
            self.algorithm.arm(event.target)
        if self.diagnosis is not None:
            # flood first: rip-up schedules retries against the flood's
            # per-node arrival times (a source can only react to a fault
            # once its own view has heard of it)
            self.diagnosis.start_flood(event, self.cycle)
        if backups:
            self._heal_worms(event)
        else:
            self._rip_up_worms(event)
        self._last_progress = self.cycle   # diagnosis progress counts
        if self.diagnosis is not None:
            # known_faults/route_epoch update when the flood converges
            return
        if self.known_faults is not self.faults:
            self.known_faults.apply(event)
        self.route_epoch += 1
        self.algorithm.on_fault_update(self)
        if rec is not None:
            rec["converged"] = self.cycle
        if backups:
            self.algorithm.disarm(event.target)

    def _apply_fault_now(self, event) -> None:
        tr = self.tracer
        if tr.enabled:
            tr.emit(trace_ev.FAULT_INJECT, **_fault_payload(event))
        self.faults.apply(event)
        if event.kind == "node":
            # a dead node's source queue and buffered flits are gone
            node = int(event.target)
            self.sources[node].queue.clear()
            self.sources[node].current = []
            self.sources[node].current_msg = None

    def _drain_for_fault(self) -> None:
        """Assumption iv: let in-flight messages complete before the
        fault takes effect (injection paused meanwhile)."""
        self._injection_paused = True
        guard = 0
        while (self._flits_in_flight()
               or any(s.current for s in self.sources)):
            self._step_drain()
            guard += 1
            if guard > self.config.deadlock_threshold * 10:
                raise DeadlockError("network failed to quiesce for a fault")
        self._injection_paused = False

    def _step_drain(self) -> None:
        self.stats.now = self.cycle
        tr = self.tracer
        if tr.enabled:
            tr.now = self.cycle
        self._advance(with_traffic=False)  # half-injected worms finish
        metrics = self.metrics
        if metrics is not None and self.cycle % metrics.stride == 0:
            metrics.sample(self)
        self.cycle += 1

    def _rip_up_worms(self, event) -> None:
        """'harsh' mode: kill worms using the dying link/node."""
        victims: set[int] = set()
        if event.kind == "link":
            a, b = event.target
            for node, pid_ok in ((a, b), (b, a)):
                router = self.routers[node]
                for pid, port in router.ports.items():
                    if port.neighbor == pid_ok:
                        victims |= router.worms_using_port(pid)
        else:
            node = int(event.target)
            router = self.routers[node]
            for vcs in router.input_vcs.values():
                for iv in vcs:
                    for f in list(iv.buffer) + list(iv.incoming):
                        victims.add(f.msg_id)
            for r in self.routers:
                for pid, port in r.ports.items():
                    if port.neighbor == node:
                        victims |= r.worms_using_port(pid)
        for msg_id in victims:
            self.drop_message(msg_id, event=event)

    # -- fast reroute: worm healing + local re-injection ---------------------

    def _heal_worms(self, event) -> None:
        """Fast-reroute counterpart of :meth:`_rip_up_worms` for a link
        fault: every worm caught mid-flight on the dead link is *split*
        at the break instead of killed.  The downstream fragment gets a
        dummy tail and finishes its journey (flits already past the
        break are not lost); the upstream remainder is absorbed and
        locally re-injected at the detecting endpoint as a fresh
        logical message, which the armed backup subbase routes around
        the fault."""
        a, b = event.target
        for node, far in ((a, b), (b, a)):
            router = self.routers[node]
            for pid, port in router.ports.items():
                if port.neighbor != far:
                    continue
                for iv in router._ivs:
                    if iv.state == ACTIVE and iv.out_port == pid \
                            and iv.header is not None:
                        self._heal_one(router, iv)

    def _heal_one(self, router, iv) -> None:
        msg_id = iv.header.msg_id
        msg = self.messages.get(msg_id)
        if msg is None:  # pragma: no cover - defensive
            return
        self._finish_fragment(router, iv, msg)
        n_rem = self._absorb_remainder(router, iv, msg_id)
        self._load_token += 1
        rr = self.stats.reroute
        if rr is not None:
            rr["worms_healed"] += 1
        tr = self.tracer
        if tr.enabled:
            tr.emit(trace_ev.WORM_HEALED, msg_id=msg_id,
                    node=router.node, remainder_flits=n_rem)
        fields = msg.header.fields
        copy = self.offer(
            router.node, msg.header.dst, n_rem + 1,
            healed_from=msg_id,
            first_dropped=int(fields.get("first_dropped", self.cycle)),
            orig_created=int(fields.get("orig_created",
                                        msg.header.created)))
        if copy is None:
            # the endpoint cannot re-inject (destination believed
            # dead / algorithm refusal): give up loudly, never silently
            self._dead_letter(int(fields.get("root_id", msg_id)))

    def _finish_fragment(self, router, iv, msg) -> None:
        """Walk the worm's occupancy chain beyond the break; mark its
        rearmost surviving flit as the tail so the fragment delivers
        and releases its channels normally.  Chain input VCs upstream
        of every remaining fragment flit would wait forever for flits
        that died with the link — force-release those.  When no
        fragment flit remains anywhere (everything but the tail was
        already ejected at the destination), the message is complete in
        all but name: mark it delivered."""
        msg_id = msg.header.msg_id
        chain: list[tuple] = []
        step = router._down.get(iv.out_port)
        if step is None:  # pragma: no cover - defensive
            return
        cur_r, cur_iv = step[0], step[1][iv.out_vc]
        while True:
            ours = (cur_iv.header is not None
                    and cur_iv.header.msg_id == msg_id)
            holds = any(f.msg_id == msg_id
                        for f in list(cur_iv.buffer) + cur_iv.incoming)
            if not ours and not holds:
                break
            chain.append((cur_r, cur_iv))
            if not (ours and cur_iv.state == ACTIVE) \
                    or cur_iv.out_port in (LOCAL, None):
                break
            nxt = cur_r._down.get(cur_iv.out_port)
            if nxt is None:  # pragma: no cover - defensive
                break
            cur_r, cur_iv = nxt[0], nxt[1][cur_iv.out_vc]
        for i, (r, civ) in enumerate(chain):
            flits = [f for f in list(civ.buffer) + civ.incoming
                     if f.msg_id == msg_id]
            if flits:
                flits[-1].is_tail = True
                for rr_, dead_iv in chain[:i]:
                    self._force_release(rr_, dead_iv)
                return
        for r, civ in chain:
            self._force_release(r, civ)
        if not msg.delivered:
            msg.delivered = self.cycle
            msg.hops = msg.header.path_len
            self.stats.count_message(msg)

    def _absorb_remainder(self, router, iv, msg_id: int) -> int:
        """Remove the upstream remainder of a split worm — every flit
        behind the break, the channels it holds, and any flits still
        waiting at the source — and return how many flits were
        absorbed."""
        n_rem = 0
        cur_r, cur_iv = router, iv
        while True:
            before = len(cur_iv.buffer) + len(cur_iv.incoming)
            cur_iv.buffer = deque(
                f for f in cur_iv.buffer if f.msg_id != msg_id)
            cur_iv.incoming = [
                f for f in cur_iv.incoming if f.msg_id != msg_id]
            removed = before - len(cur_iv.buffer) - len(cur_iv.incoming)
            n_rem += removed
            cur_r.n_flits -= removed
            in_port, in_vc = cur_iv.port, cur_iv.vc
            self._force_release(cur_r, cur_iv)
            if in_port == LOCAL:
                src = self.sources[cur_r.node]
                if src.current_msg is not None \
                        and src.current_msg.header.msg_id == msg_id:
                    n_rem += len(src.current)
                    src.current = []
                    src.current_msg = None
                return n_rem
            port = cur_r.ports[in_port]
            up_r = self.routers[port.neighbor]
            up_iv = next(
                (c for c in up_r._ivs
                 if c.state == ACTIVE and c.header is not None
                 and c.header.msg_id == msg_id
                 and c.out_port == port.neighbor_port
                 and c.out_vc == in_vc), None)
            if up_iv is None:
                # the tail already crossed into the VCs we cleaned:
                # nothing of the worm remains further upstream
                return n_rem
            cur_r, cur_iv = up_r, up_iv

    def _force_release(self, router, iv) -> None:
        if iv.out_port is not None and iv.out_vc is not None:
            ov = router.output_vcs[iv.out_port][iv.out_vc]
            if ov.owner == (iv.port, iv.vc):
                ov.owner = None
        iv.release_worm()

    def _absorb_and_reinject(self, msg: Message) -> None:
        """Backup-mode handling of a worm the algorithm declared stuck
        (typically mid-flight, against a remote fault its local
        knowledge has not converged on): absorb the whole worm where it
        stands and schedule a local re-injection with backoff, so the
        retry meets a (more) converged view.  A bounded number of local
        retries keeps livelock impossible; exhaustion dead-letters
        loudly."""
        msg_id = msg.header.msg_id
        where = msg.header.src
        for r in self.routers:
            for civ in r._ivs:
                if (civ.header is not None
                        and civ.header.msg_id == msg_id
                        and civ.state != ACTIVE) \
                        or (civ.state == IDLE and civ.buffer
                            and civ.buffer[0].msg_id == msg_id
                            and civ.buffer[0].is_head):
                    where = r.node
                    break
        for r in self.routers:
            r.purge_message(msg_id)
        src = self.sources[msg.header.src]
        if src.current_msg is msg:
            src.current = []
            src.current_msg = None
        msg.dropped = True
        msg.header.fields["stuck"] = True
        self.stats.messages_stuck += 1
        tr = self.tracer
        if tr.enabled:
            tr.emit(trace_ev.WORM_STUCK, msg_id=msg_id)
        fields = msg.header.fields
        root = int(fields.get("root_id", msg_id))
        retries = int(fields.get("local_retries", 0))
        if retries >= 3:
            self._dead_letter(root)
            return
        rr = self.stats.reroute
        if rr is not None:
            rr["worms_absorbed"] += 1
        if tr.enabled:
            tr.emit(trace_ev.WORM_ABSORBED, msg_id=msg_id, node=where,
                    retries=retries + 1)
        carry = {
            "retry_of": msg_id,
            "root_id": root,
            "local_retries": retries + 1,
            "first_dropped": int(fields.get("first_dropped", self.cycle)),
            "orig_created": int(fields.get("orig_created",
                                           msg.header.created)),
        }
        release = self.cycle + self.config.retry_backoff * (1 << retries)
        heappush(self._pending_retries,
                 (release, next(self._retry_seq), where,
                  msg.header.dst, msg.header.length, carry))

    def message_stuck(self, msg_id: int) -> None:
        """The routing algorithm declared a message permanently
        unroutable mid-flight (Condition-3 violation): remove it and
        count it separately from fault-ripped drops."""
        if self.config.backup_routes:
            msg_ = self.messages.get(msg_id)
            if msg_ is not None and not msg_.delivered:
                self._absorb_and_reinject(msg_)
                return
        for r in self.routers:
            r.purge_message(msg_id)
        msg = self.messages.get(msg_id)
        if msg is not None:
            src = self.sources[msg.header.src]
            if src.current_msg is msg:
                src.current = []
                src.current_msg = None
            msg.dropped = True
            msg.header.fields["stuck"] = True
        self.stats.messages_stuck += 1
        tr = self.tracer
        if tr.enabled:
            tr.emit(trace_ev.WORM_STUCK, msg_id=msg_id)
        if msg is not None and self.config.retry_limit \
                and not msg.delivered:
            self._schedule_retry(msg)

    def drop_message(self, msg_id: int, event=None) -> None:
        """Remove a message killed mid-flight (harsh-mode rip-up).
        ``event`` is the fault that killed it, used to anchor the
        source-retransmission release to the cycle the *source's* view
        confirms that fault."""
        for r in self.routers:
            r.purge_message(msg_id)
        msg = self.messages.get(msg_id)
        if msg is None:  # pragma: no cover
            return
        src = self.sources[msg.header.src]
        if src.current_msg is msg:
            src.current = []
            src.current_msg = None
        msg.dropped = True
        self.stats.count_dropped()
        tr = self.tracer
        if tr.enabled:
            payload = {} if event is None else _fault_payload(event)
            tr.emit(trace_ev.WORM_DROP, msg_id=msg_id,
                    src=msg.header.src, dst=msg.header.dst, **payload)
        if msg.delivered:
            return
        if self.config.retry_limit:
            self._schedule_retry(msg, event=event)
        elif self.config.retransmit_dropped:
            # the re-injection recovery the paper sketches for messages
            # ripped up by a link fault; the copy records its original
            self.offer(msg.header.src, msg.header.dst, msg.header.length,
                       retry_of=msg.header.msg_id)

    # -- source retransmission ---------------------------------------------------

    def _schedule_retry(self, msg: Message, event=None) -> None:
        """Queue a dropped/stranded message for re-injection at its
        source.  The retransmission is released once (a) the source's
        local fault view has confirmed the killing fault — a real
        source cannot react to a fault it has not heard of — and (b)
        the exponential backoff for this attempt has elapsed."""
        hdr = msg.header
        fields = hdr.fields
        attempt = int(fields.get("attempt", 0)) + 1
        root = fields.get("root_id", hdr.msg_id)
        if attempt > self.config.retry_limit:
            self._dead_letter(root)
            return
        confirm = self.cycle
        if event is not None and self.diagnosis is not None:
            eta = self.diagnosis.eta(hdr.src, event)
            if eta is None:
                # the flood can never reach the source: it is cut off
                # from the fault site, hence from the destination too
                self._dead_letter(root)
                return
            confirm = max(confirm, eta)
        backoff = self.config.retry_backoff * (1 << (attempt - 1))
        carry = {
            "retry_of": hdr.msg_id,
            "root_id": root,
            "attempt": attempt,
            "first_dropped": int(fields.get("first_dropped", self.cycle)),
            "orig_created": int(fields.get("orig_created", hdr.created)),
        }
        heappush(self._pending_retries,
                 (confirm + backoff, next(self._retry_seq),
                  hdr.src, hdr.dst, hdr.length, carry))

    def _release_due_retries(self) -> None:
        while self._pending_retries \
                and self._pending_retries[0][0] <= self.cycle:
            _, _, src, dst, length, carry = heappop(self._pending_retries)
            self._release_retry(src, dst, length, carry)

    def _release_retry(self, src: int, dst: int, length: int,
                       carry: dict) -> None:
        root = carry["root_id"]
        if not self.faults.node_ok(src):
            # the source itself died while the retry was queued
            self._dead_letter(root)
            return
        view = self.fault_view(src)
        if not view.node_ok(dst) or not view.connected(src, dst) \
                or not self.algorithm.accepts(src, dst):
            # fail-stop faults are permanent: a destination the source's
            # view already knows to be dead/unreachable (or that the
            # algorithm's convex completion excludes) will never come
            # back — give up loudly instead of retrying forever
            self._dead_letter(root)
            return
        msg = Message.create(src, dst, length, self.cycle,
                             msg_id=next(self._msg_ids), **carry)
        self.messages[msg.header.msg_id] = msg
        self.sources[src].queue.append(msg)
        self._active_sources.add(src)
        self.stats.count_retried()
        tr = self.tracer
        if tr.enabled:
            tr.emit(trace_ev.WORM_RETRY, msg_id=msg.header.msg_id,
                    root_id=root, src=src, dst=dst,
                    attempt=carry["attempt"])

    def _dead_letter(self, root_id: int) -> None:
        self.dead_letters.append(root_id)
        self.stats.count_dead_letter()
        tr = self.tracer
        if tr.enabled:
            tr.emit(trace_ev.WORM_DEAD_LETTER, root_id=root_id)

    # -- queries ----------------------------------------------------------------------

    def _flits_in_flight(self) -> int:
        return sum(r.occupancy() for r in self.routers)

    def _pending_sources(self) -> int:
        return sum(len(s.queue) + len(s.current) for s in self.sources)

    def _metrics_active_routers(self) -> int:
        """Gauge behind the metrics timeseries' ``active_routers``
        column (the batched engine answers from its C-side mirror)."""
        return len(self._active)

    def in_flight(self) -> int:
        return self._flits_in_flight()

    def undelivered(self) -> list[Message]:
        return [m for m in self.messages.values()
                if m.delivered is None and not m.dropped]

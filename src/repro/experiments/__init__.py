"""Experiment harness: workload runners, result formatting, and the
paper's reference numbers."""

from .ascii_chart import line_chart
from .harness import fmt, results_dir, save_report, table
from .paper_data import PAPER, PAPER_TABLE1, PAPER_TABLE2, paper_table2_row
from .runners import (WorkloadSpec, cube_fault_sweep, decision_time_sweep,
                      latency_vs_load, mesh_fault_sweep, run_workload,
                      saturation_throughput)

__all__ = ["line_chart", "fmt", "results_dir", "save_report", "table", "PAPER",
           "PAPER_TABLE1", "PAPER_TABLE2", "paper_table2_row",
           "WorkloadSpec", "cube_fault_sweep", "decision_time_sweep",
           "latency_vs_load", "mesh_fault_sweep", "run_workload",
           "saturation_throughput"]

"""Experiment harness: workload runners, the parallel sweep engine,
result formatting, and the paper's reference numbers."""

from .ascii_chart import line_chart
from .campaign import campaign_table, make_scenario, run_campaign
from .harness import (add_sweep_args, fmt, results_dir, save_report,
                      sweep_main, table)
from .paper_data import PAPER, PAPER_TABLE1, PAPER_TABLE2, paper_table2_row
from .pool import code_version_token, default_cache_dir, run_sweep
from .runners import (WorkloadSpec, cube_fault_sweep, decision_time_sweep,
                      latency_vs_load, mesh_fault_sweep, run_workload,
                      saturation_throughput, sweep_fault_rng)

__all__ = ["line_chart", "campaign_table", "make_scenario", "run_campaign",
           "add_sweep_args", "fmt", "results_dir",
           "save_report", "sweep_main", "table", "PAPER",
           "PAPER_TABLE1", "PAPER_TABLE2", "paper_table2_row",
           "code_version_token", "default_cache_dir", "run_sweep",
           "WorkloadSpec", "cube_fault_sweep", "decision_time_sweep",
           "latency_vs_load", "mesh_fault_sweep", "run_workload",
           "saturation_throughput", "sweep_fault_rng"]

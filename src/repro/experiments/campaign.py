"""Chaos campaign engine: randomized mid-flight fault scenarios.

The paper argues for fault-tolerant routing by construction; this
module stress-tests the *end-to-end* claim — with per-node fault
diagnosis, harsh-mode rip-up and source retransmission enabled, every
message whose source and destination stay connected is eventually
delivered.  A campaign sweeps many randomized scenarios (which links
die, and when, varies per scenario; the traffic, topology and knobs
are fixed) through :func:`repro.experiments.pool.run_sweep`, so
scenarios fan out over worker processes and completed scenarios replay
from the content-addressed cache.

Every scenario is fully determined by ``(seed, scenario index)``:
fault placement uses the connectivity-preserving
:func:`repro.sim.random_link_faults` / :func:`repro.sim.random_node_faults`
draws and fault times are drawn from the same per-scenario RNG, so a
campaign is reproducible point-by-point and its report can be asserted
on in CI.

The report separates the three ways a logical message can end:

* **delivered** — some copy (original or retransmission) arrived;
* **dead-lettered** — the retry machinery gave up *and said so*
  (retry cap, source died, destination unreachable in the source's
  converged view);
* **silent loss** — neither: the failure class a reliable transport
  must not exhibit.  A connected-fault campaign asserts this is zero.
"""

from __future__ import annotations

import numpy as np

from ..sim import Mesh2D, random_link_faults, random_node_faults
from .runners import WorkloadSpec


def scenario_rng(seed: int, index: int) -> np.random.Generator:
    """Per-scenario RNG; sequence seeding keeps streams distinct
    across (campaign seed, scenario) pairs (see sweep_fault_rng)."""
    return np.random.default_rng([seed, 0x5EED, index])


def make_scenario(index: int, *, width: int = 8, height: int = 8,
                  n_link_faults: int = 2, n_node_faults: int = 0,
                  algorithm: str = "nafta", load: float = 0.12,
                  pattern: str = "uniform",
                  pattern_kwargs: dict | None = None,
                  policy: str = "deterministic", policy_seed: int = 0,
                  message_length: int = 6, cycles: int = 2000,
                  warmup: int = 200, seed: int = 1,
                  detection_delay: int = 40,
                  diagnosis_hop_delay: int = 2,
                  retry_limit: int = 6, retry_backoff: int = 16,
                  hop_budget: int = 0, backup_routes: bool = False,
                  trace: bool = False,
                  trace_capacity: int = 65536,
                  metrics_stride: int = 0,
                  engine: str = "object") -> WorkloadSpec:
    """One randomized mid-flight fault scenario as a WorkloadSpec.

    Faults keep the network connected (the campaign's acceptance
    criterion is about *routable* messages) and strike at random
    cycles inside the middle of the measured window, so worms are in
    flight when the links die.
    """
    topo = Mesh2D(width, height)
    rng = scenario_rng(seed, index)
    links = random_link_faults(topo, n_link_faults, rng) \
        if n_link_faults else []
    nodes = random_node_faults(topo, n_node_faults, rng) \
        if n_node_faults else []
    lo = warmup + (cycles - warmup) // 4
    hi = warmup + (cycles - warmup) // 2
    timed = [(int(rng.integers(lo, hi)), "link", link) for link in links]
    timed += [(int(rng.integers(lo, hi)), "node", node) for node in nodes]
    return WorkloadSpec(
        topology=topo, algorithm=algorithm, load=load,
        pattern=pattern, pattern_kwargs=dict(pattern_kwargs or {}),
        policy=policy, policy_seed=policy_seed,
        message_length=message_length, cycles=cycles, warmup=warmup,
        seed=seed * 1000 + index, timed_faults=timed,
        fault_mode="harsh", detection_delay=detection_delay,
        diagnosis_hop_delay=diagnosis_hop_delay,
        retry_limit=retry_limit, retry_backoff=retry_backoff,
        hop_budget=hop_budget, backup_routes=backup_routes,
        drain=True, trace=trace,
        trace_capacity=trace_capacity, metrics_stride=metrics_stride,
        engine=engine)


def run_campaign(n_scenarios: int = 20, *, workers: int = 0,
                 cache: bool = False, progress=False,
                 stats: dict | None = None, **scenario_kw) -> dict:
    """Run ``n_scenarios`` randomized fault scenarios and aggregate a
    reliability report.  ``scenario_kw`` forwards to
    :func:`make_scenario`; ``workers``/``cache``/``progress`` forward
    to the sweep engine."""
    from .pool import run_sweep
    specs = [make_scenario(i, **scenario_kw) for i in range(n_scenarios)]
    results = run_sweep(specs, workers=workers, cache=cache,
                        progress=progress, label="chaos_campaign",
                        stats=stats)
    scenarios = []
    for i, (spec, res) in enumerate(zip(specs, results)):
        extra = {}
        if "trace" in res:
            extra["trace"] = res["trace"]
        if "metrics" in res:
            extra["metrics"] = res["metrics"]
        scenarios.append({
            **extra,
            "scenario": i,
            "timed_faults": spec.to_dict()["timed_faults"],
            "deadlocked": res["deadlocked"],
            "created_logical": res["messages_created_logical"],
            "delivered_logical": res["messages_delivered_logical"],
            "retried": res["messages_retried"],
            "dead_lettered": res["messages_dead_lettered"],
            "recovered": res["messages_recovered"],
            "silent_loss": res["silent_loss"],
            "mean_time_to_recover": res["mean_time_to_recover"],
            "max_time_to_recover": res["max_time_to_recover"],
            "mean_latency": res["mean_latency"],
            # recovery gap (present whenever detection/diagnosis delays
            # are configured — i.e. for every default campaign)
            "cycles_of_loss": res.get("cycles_of_loss", 0),
            "fault_events": res.get("fault_events", []),
        })
    created = sum(s["created_logical"] for s in scenarios)
    delivered = sum(s["delivered_logical"] for s in scenarios)
    report = {
        "n_scenarios": n_scenarios,
        "scenarios": scenarios,
        "created_logical": created,
        "delivered_logical": delivered,
        "delivery_rate": delivered / created if created else 1.0,
        "retried": sum(s["retried"] for s in scenarios),
        "recovered": sum(s["recovered"] for s in scenarios),
        "dead_lettered": sum(s["dead_lettered"] for s in scenarios),
        "silent_loss": sum(s["silent_loss"] for s in scenarios),
        "deadlocked_scenarios": [s["scenario"] for s in scenarios
                                 if s["deadlocked"]],
        "max_time_to_recover": max(
            (s["max_time_to_recover"] for s in scenarios), default=0),
        "cycles_of_loss": sum(s["cycles_of_loss"] for s in scenarios),
    }
    return report


def campaign_table(report: dict) -> str:
    """Human-readable per-scenario table plus the aggregate line."""
    head = (f"{'#':>3} {'faults':>6} {'created':>8} {'deliv':>6} "
            f"{'retry':>6} {'recov':>6} {'dead':>5} {'silent':>6} "
            f"{'maxTTR':>7} {'lossCyc':>7}")
    lines = [head, "-" * len(head)]
    for s in report["scenarios"]:
        lines.append(
            f"{s['scenario']:>3} {len(s['timed_faults']):>6} "
            f"{s['created_logical']:>8} {s['delivered_logical']:>6} "
            f"{s['retried']:>6} {s['recovered']:>6} "
            f"{s['dead_lettered']:>5} {s['silent_loss']:>6} "
            f"{s['max_time_to_recover']:>7} "
            f"{s.get('cycles_of_loss', 0):>7}")
    lines.append("-" * len(head))
    lines.append(
        f"total: {report['created_logical']} logical messages, "
        f"{report['delivered_logical']} delivered "
        f"({report['delivery_rate']:.4%}), "
        f"{report['retried']} retried, {report['recovered']} recovered, "
        f"{report['dead_lettered']} dead-lettered, "
        f"{report['silent_loss']} silent loss, "
        f"{report.get('cycles_of_loss', 0)} loss-window cycles")
    if report["deadlocked_scenarios"]:
        lines.append("DEADLOCKED scenarios: "
                     f"{report['deadlocked_scenarios']}")
    return "\n".join(lines)

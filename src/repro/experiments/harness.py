"""Formatting and persistence for benchmark results.

Every benchmark regenerates one of the paper's tables/claims, renders a
text report, prints it and archives it under ``benchmarks/results/`` so
EXPERIMENTS.md can reference the exact numbers of the last run.
"""

from __future__ import annotations

import argparse
import math
import os
from pathlib import Path


def results_dir() -> Path:
    """benchmarks/results/ next to the repository root (or overridden
    via REPRO_RESULTS_DIR)."""
    env = os.environ.get("REPRO_RESULTS_DIR")
    if env:
        d = Path(env)
    else:
        d = Path(__file__).resolve().parents[3] / "benchmarks" / "results"
    d.mkdir(parents=True, exist_ok=True)
    return d


def save_report(name: str, text: str, echo: bool = True) -> Path:
    path = results_dir() / f"{name}.txt"
    path.write_text(text + "\n")
    if echo:
        print(f"\n{text}\n[saved to {path}]")
    return path


def add_sweep_args(parser: argparse.ArgumentParser) -> argparse.ArgumentParser:
    """The shared sweep-engine flags every sweep-shaped benchmark CLI
    exposes: ``--workers N`` fans points out over worker processes,
    ``--no-cache`` bypasses the content-addressed result cache."""
    parser.add_argument("--workers", type=int, default=0, metavar="N",
                        help="fan sweep points out over N worker "
                             "processes (0 = in-process serial)")
    parser.add_argument("--no-cache", dest="cache", action="store_false",
                        help="always simulate; skip the result cache "
                             "under benchmarks/results/cache/")
    return parser


def sweep_main(run_fn, description: str = "", argv=None) -> None:
    """Tiny shared ``main()`` for sweep-shaped benchmarks: parse the
    sweep flags and call ``run_fn(workers=..., cache=...)``."""
    ap = argparse.ArgumentParser(description=description)
    add_sweep_args(ap)
    args = ap.parse_args(argv)
    run_fn(workers=args.workers, cache=args.cache)


def fmt(v) -> str:
    if isinstance(v, float):
        if math.isnan(v):
            return "nan"
        return f"{v:.2f}" if abs(v) >= 10 else f"{v:.3f}"
    return str(v)


def table(rows: list[dict], columns: list[tuple[str, str]],
          title: str = "") -> str:
    """Render dict rows as a fixed-width text table.

    ``columns`` is a list of (dict key, header) pairs.
    """
    headers = [h for _, h in columns]
    data = [[fmt(r.get(k, "")) for k, _ in columns] for r in rows]
    widths = [max(len(h), *(len(d[i]) for d in data)) if data else len(h)
              for i, h in enumerate(headers)]
    lines = []
    if title:
        lines.append(title)
    lines.append("  " + "  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append("  " + "  ".join("-" * w for w in widths))
    for d in data:
        lines.append("  " + "  ".join(c.rjust(w) for c, w in zip(d, widths)))
    return "\n".join(lines)

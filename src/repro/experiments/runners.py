"""Reusable experiment runners for the benchmark harness.

Each runner builds a network, drives a workload, and returns plain-dict
results so benchmarks can print paper-vs-measured tables and tests can
assert on shapes (who wins, by what factor, where crossovers fall).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..routing.registry import make_algorithm
from ..sim import (FaultSchedule, Mesh2D, Network, SimConfig,
                   TrafficGenerator, Hypercube, random_link_faults)
from ..sim.flit import reset_message_ids
from ..sim.network import DeadlockError
from ..sim.topology import Topology


@dataclass
class WorkloadSpec:
    topology: Topology
    algorithm: str
    pattern: str = "uniform"
    load: float = 0.1
    message_length: int = 4
    cycles: int = 2000
    warmup: int = 400
    seed: int = 1
    cycles_per_step: int = 0      # 0 = derive from decision steps x 1
    buffer_depth: int = 4
    fault_links: list = field(default_factory=list)
    fault_nodes: list = field(default_factory=list)
    arbiter: str = "round_robin"


def run_workload(spec: WorkloadSpec, drain: bool = True) -> dict:
    """One simulation run; returns the stats summary + run metadata."""
    reset_message_ids()
    cfg = SimConfig(buffer_depth=spec.buffer_depth,
                    cycles_per_step=max(1, spec.cycles_per_step))
    algo = make_algorithm(spec.algorithm)
    net = Network(spec.topology, algo, config=cfg, arbiter=spec.arbiter)
    if spec.fault_links or spec.fault_nodes:
        net.schedule_faults(FaultSchedule.static(links=spec.fault_links,
                                                 nodes=spec.fault_nodes))
    net.attach_traffic(TrafficGenerator(
        spec.topology, spec.pattern, load=spec.load,
        message_length=spec.message_length, seed=spec.seed))
    net.set_warmup(spec.warmup)
    deadlocked = False
    try:
        net.run(spec.cycles)
        if drain:
            net.traffic = None
            net.run_until_drained(max_cycles=300_000)
    except DeadlockError:
        deadlocked = True
    out = net.stats.summary(spec.topology.n_nodes)
    out["algorithm"] = spec.algorithm
    out["load"] = spec.load
    out["pattern"] = spec.pattern
    out["deadlocked"] = deadlocked
    out["undelivered"] = len(net.undelivered())
    out["n_faults"] = net.faults.n_faults()
    return out


def latency_vs_load(topology_factory, algorithm: str,
                    loads: list[float], **kw) -> list[dict]:
    """Latency/throughput curve over offered load (one fresh network
    per point)."""
    out = []
    for load in loads:
        spec = WorkloadSpec(topology=topology_factory(),
                            algorithm=algorithm, load=load, **kw)
        out.append(run_workload(spec, drain=False))
    return out


def saturation_throughput(points: list[dict]) -> float:
    """Accepted throughput at the highest offered load (flits/node/
    cycle) — the classic saturation measure."""
    return max(p["throughput_flits_node_cycle"] for p in points)


def mesh_fault_sweep(algorithm: str, n_faults_list: list[int],
                     width: int = 8, height: int = 8, seed: int = 7,
                     **kw) -> list[dict]:
    """NAFTA-style experiment: fixed moderate load, increasing numbers
    of random (connectivity-preserving) link faults."""
    out = []
    for n in n_faults_list:
        topo = Mesh2D(width, height)
        rng = np.random.default_rng(seed + n)
        links = random_link_faults(topo, n, rng) if n else []
        spec = WorkloadSpec(topology=topo, algorithm=algorithm,
                            fault_links=links, seed=seed, **kw)
        res = run_workload(spec)
        res["n_link_faults"] = n
        out.append(res)
    return out


def cube_fault_sweep(algorithm: str, n_faults_list: list[int],
                     dimension: int = 4, seed: int = 3, **kw) -> list[dict]:
    out = []
    for n in n_faults_list:
        topo = Hypercube(dimension)
        rng = np.random.default_rng(seed + n)
        nodes = []
        while len(nodes) < n:
            cand = int(rng.integers(0, topo.n_nodes))
            if cand not in nodes:
                nodes.append(cand)
        spec = WorkloadSpec(topology=topo, algorithm=algorithm,
                            fault_nodes=nodes, seed=seed, **kw)
        res = run_workload(spec)
        res["n_node_faults"] = n
        out.append(res)
    return out


def decision_time_sweep(topology_factory, algorithm: str,
                        cycles_per_step_list: list[int],
                        **kw) -> list[dict]:
    """The [DLO97] experiment: impact of routing-decision time on
    network latency."""
    out = []
    for cps in cycles_per_step_list:
        spec = WorkloadSpec(topology=topology_factory(),
                            algorithm=algorithm, cycles_per_step=cps, **kw)
        res = run_workload(spec)
        res["cycles_per_step"] = cps
        out.append(res)
    return out

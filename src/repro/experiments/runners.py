"""Reusable experiment runners for the benchmark harness.

Each runner builds a network, drives a workload, and returns plain-dict
results so benchmarks can print paper-vs-measured tables and tests can
assert on shapes (who wins, by what factor, where crossovers fall).

Every sweep-shaped runner expands into a list of independent
:class:`WorkloadSpec` points and submits them through
:func:`repro.experiments.pool.run_sweep`, so callers get process-pool
fan-out and content-addressed result caching with ``workers=N`` /
``cache=True`` — serially and in-process by default.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

import numpy as np

from ..routing.registry import make_algorithm
from ..routing.select import POLICIES
from ..sim import (FaultSchedule, Mesh2D, Network, SimConfig,
                   TrafficGenerator, Hypercube, random_link_faults)
from ..sim.traffic import PATTERNS
from ..sim.batched import build_network
from ..sim.network import DeadlockError
from ..sim.topology import Topology, topology_from_dict


@dataclass
class WorkloadSpec:
    """One simulation point: everything needed to reproduce a run.

    ``topology`` may be a live :class:`Topology` or a description dict
    (``Topology.describe()`` output).  Live topologies cannot cross
    process boundaries, so the sweep engine ships ``to_dict()`` to the
    workers and each worker rebuilds its own topology; the two
    spellings are equivalent and hash to the same :meth:`spec_key`.
    """

    topology: Topology | dict
    algorithm: str
    pattern: str = "uniform"
    #: extra TrafficGenerator arguments for parameterized patterns
    #: (bursty: duty/burst_len, trace_replay: trace)
    pattern_kwargs: dict = field(default_factory=dict)
    load: float = 0.1
    message_length: int = 4
    cycles: int = 2000
    warmup: int = 400
    seed: int = 1
    cycles_per_step: int = 0      # 0 = derive from decision steps x 1
    buffer_depth: int = 4
    fault_links: list = field(default_factory=list)
    fault_nodes: list = field(default_factory=list)
    arbiter: str = "round_robin"
    drain: bool = True            # run_until_drained after the cycles
    # -- reliability knobs (defaults reproduce the classic behaviour) --
    fault_mode: str = "quiesce"
    detection_delay: int = 0
    diagnosis_hop_delay: int = 0
    retry_limit: int = 0
    retry_backoff: int = 16
    hop_budget: int = 0
    #: LFA-style fast reroute (precompiled backup subbases; harsh mode)
    backup_routes: bool = False
    #: mid-flight faults: (cycle, "link", (a, b)) / (cycle, "node", n)
    timed_faults: list = field(default_factory=list)
    # -- observability (repro.obs; all off by default) -----------------
    trace: bool = False           # record a RingTracer event stream
    trace_capacity: int = 65536
    metrics_stride: int = 0       # 0 = no timeseries; N = sample every N
    #: simulation engine: "object" (the oracle) or "batched" (the
    #: struct-of-arrays engine; bit-identical summaries, metrics
    #: included — falls back to the object engine only when tracing is
    #: requested, and the summary's ``engine_fallback`` key says why)
    engine: str = "object"
    #: output-selection policy over legal route candidates
    #: (repro.routing.select; non-default policies run on the object
    #: engine — build_network declines them for "batched")
    policy: str = "deterministic"
    policy_seed: int = 0

    def __post_init__(self):
        # fail at spec-parse time, not deep inside TrafficGenerator or
        # the routing layer mid-sweep
        if self.pattern not in PATTERNS:
            raise ValueError(f"unknown traffic pattern {self.pattern!r}; "
                             f"choose from {sorted(PATTERNS)}")
        if self.policy not in POLICIES:
            raise ValueError(f"unknown selection policy {self.policy!r}; "
                             f"choose from {sorted(POLICIES)}")

    # -- serialization (process boundary / cache identity) ------------

    def topology_desc(self) -> dict:
        """Canonical construction recipe for the topology."""
        if isinstance(self.topology, Topology):
            return self.topology.describe()
        return dict(self.topology)

    def build_topology(self) -> Topology:
        """A live topology for this spec (rebuilt if only described)."""
        if isinstance(self.topology, Topology):
            return self.topology
        return topology_from_dict(self.topology)

    def to_dict(self) -> dict:
        """Canonical JSON-able form.  Fault lists are normalized
        (canonical link endpoint order, ascending) because fault sets
        are order-insensitive — every ordering of the same faults is
        the same experiment and must hash identically."""
        return {
            "topology": self.topology_desc(),
            "algorithm": self.algorithm,
            "pattern": self.pattern,
            "load": float(self.load),
            "message_length": int(self.message_length),
            "cycles": int(self.cycles),
            "warmup": int(self.warmup),
            "seed": int(self.seed),
            "cycles_per_step": int(self.cycles_per_step),
            "buffer_depth": int(self.buffer_depth),
            "fault_links": sorted(
                [min(int(a), int(b)), max(int(a), int(b))]
                for a, b in self.fault_links),
            "fault_nodes": sorted(int(n) for n in self.fault_nodes),
            "arbiter": self.arbiter,
            "drain": bool(self.drain),
            "fault_mode": self.fault_mode,
            "detection_delay": int(self.detection_delay),
            "diagnosis_hop_delay": int(self.diagnosis_hop_delay),
            "retry_limit": int(self.retry_limit),
            "retry_backoff": int(self.retry_backoff),
            "hop_budget": int(self.hop_budget),
            # emitted only when on, like "engine": pre-existing cached
            # spec_keys stay valid and False === absent
            **({"backup_routes": True} if self.backup_routes else {}),
            "timed_faults": sorted(
                [int(cycle), "link",
                 [min(int(t[0]), int(t[1])), max(int(t[0]), int(t[1]))]]
                if kind == "link" else [int(cycle), "node", int(t)]
                for cycle, kind, t in self.timed_faults),
            "trace": bool(self.trace),
            "trace_capacity": int(self.trace_capacity),
            "metrics_stride": int(self.metrics_stride),
            # emitted only when non-default so every pre-existing
            # cached spec_key stays valid (and "object" === absent)
            **({"engine": self.engine} if self.engine != "object"
               else {}),
            **({"pattern_kwargs": dict(self.pattern_kwargs)}
               if self.pattern_kwargs else {}),
            **({"policy": self.policy}
               if self.policy != "deterministic" else {}),
            **({"policy_seed": int(self.policy_seed)}
               if self.policy_seed else {}),
        }

    @classmethod
    def from_dict(cls, d: dict) -> "WorkloadSpec":
        d = dict(d)
        return cls(
            topology=topology_from_dict(d["topology"]),
            algorithm=d["algorithm"],
            pattern=d.get("pattern", "uniform"),
            load=float(d.get("load", 0.1)),
            message_length=int(d.get("message_length", 4)),
            cycles=int(d.get("cycles", 2000)),
            warmup=int(d.get("warmup", 400)),
            seed=int(d.get("seed", 1)),
            cycles_per_step=int(d.get("cycles_per_step", 0)),
            buffer_depth=int(d.get("buffer_depth", 4)),
            fault_links=[(int(a), int(b)) for a, b in d.get("fault_links", [])],
            fault_nodes=[int(n) for n in d.get("fault_nodes", [])],
            arbiter=d.get("arbiter", "round_robin"),
            drain=bool(d.get("drain", True)),
            fault_mode=d.get("fault_mode", "quiesce"),
            detection_delay=int(d.get("detection_delay", 0)),
            diagnosis_hop_delay=int(d.get("diagnosis_hop_delay", 0)),
            retry_limit=int(d.get("retry_limit", 0)),
            retry_backoff=int(d.get("retry_backoff", 16)),
            hop_budget=int(d.get("hop_budget", 0)),
            backup_routes=bool(d.get("backup_routes", False)),
            timed_faults=[
                (int(cycle), kind,
                 (int(t[0]), int(t[1])) if kind == "link" else int(t))
                for cycle, kind, t in d.get("timed_faults", [])],
            trace=bool(d.get("trace", False)),
            trace_capacity=int(d.get("trace_capacity", 65536)),
            metrics_stride=int(d.get("metrics_stride", 0)),
            engine=d.get("engine", "object"),
            pattern_kwargs=dict(d.get("pattern_kwargs", {})),
            policy=d.get("policy", "deterministic"),
            policy_seed=int(d.get("policy_seed", 0)),
        )

    def spec_key(self, code_token: str | None = None) -> str:
        """Content address of this simulation point: a stable hash of
        the canonical dict plus a code-version token, so cached results
        are invalidated whenever the spec *or* the simulator/routing
        code changes."""
        if code_token is None:
            from .pool import code_version_token
            code_token = code_version_token()
        blob = json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))
        return hashlib.sha256(
            (code_token + "\n" + blob).encode()).hexdigest()


def run_workload(spec: WorkloadSpec, drain: bool | None = None) -> dict:
    """One simulation run; returns the stats summary + run metadata.

    ``drain`` overrides ``spec.drain`` when given (legacy call style);
    the sweep engine always runs with the spec's own setting.
    """
    if drain is None:
        drain = spec.drain
    topology = spec.build_topology()
    cfg = SimConfig(buffer_depth=spec.buffer_depth,
                    cycles_per_step=max(1, spec.cycles_per_step),
                    fault_mode=spec.fault_mode,
                    detection_delay=spec.detection_delay,
                    diagnosis_hop_delay=spec.diagnosis_hop_delay,
                    retry_limit=spec.retry_limit,
                    retry_backoff=spec.retry_backoff,
                    hop_budget=spec.hop_budget,
                    backup_routes=spec.backup_routes,
                    engine=spec.engine,
                    policy=spec.policy,
                    policy_seed=spec.policy_seed)
    algo = make_algorithm(spec.algorithm)
    tracer = metrics = None
    if spec.trace:
        from ..obs import RingTracer
        tracer = RingTracer(capacity=spec.trace_capacity)
    if spec.metrics_stride:
        from ..obs import MetricsTimeseries
        metrics = MetricsTimeseries(stride=spec.metrics_stride)
    net = build_network(topology, algo, config=cfg, arbiter=spec.arbiter,
                        tracer=tracer, metrics=metrics)
    if spec.fault_links or spec.fault_nodes or spec.timed_faults:
        schedule = FaultSchedule.static(links=spec.fault_links,
                                        nodes=spec.fault_nodes)
        for cycle, kind, target in spec.timed_faults:
            if kind == "link":
                schedule.add_link_fault(cycle, *target)
            else:
                schedule.add_node_fault(cycle, target)
        net.schedule_faults(schedule)
    net.attach_traffic(TrafficGenerator(
        topology, spec.pattern, load=spec.load,
        message_length=spec.message_length, seed=spec.seed,
        pattern_kwargs=spec.pattern_kwargs or None))
    net.set_warmup(spec.warmup)
    deadlocked = False
    try:
        net.run(spec.cycles)
        if drain:
            net.traffic = None
            net.run_until_drained(max_cycles=300_000)
    except DeadlockError:
        deadlocked = True
    out = net.stats.summary(topology.n_nodes)
    out["algorithm"] = spec.algorithm
    out["load"] = spec.load
    out["pattern"] = spec.pattern
    out["deadlocked"] = deadlocked
    out["engine"] = net.engine_name
    out["policy"] = spec.policy
    out["undelivered"] = len(net.undelivered())
    out["n_faults"] = net.faults.n_faults()
    out.update(_logical_accounting(net))
    if spec.fault_mode == "harsh" and (spec.detection_delay
                                       or spec.diagnosis_hop_delay):
        out.update(_recovery_gaps(net))
    if tracer is not None:
        # a raw blob, not Chrome format: plain-JSON results survive the
        # process pool and the content-addressed cache unchanged, and
        # exporters convert at presentation time (the metrics blob rides
        # along inside the stats summary the same way)
        out["trace"] = tracer.to_dict()
    return out


def _logical_accounting(net: Network) -> dict:
    """End-to-end reliability per *logical* message: the original send
    and all its retransmissions share one root id, so one root counts
    delivered if any copy arrived.  A root that was neither delivered
    nor dead-lettered (an accounted give-up) is *silent loss* — the
    failure class the retry machinery exists to eliminate."""
    roots: set[int] = set()
    delivered: set[int] = set()
    for m in net.messages.values():
        fields = m.header.fields
        # root_id (retry machinery) or retry_of (legacy one-shot
        # retransmit_dropped copies) name the originating send
        root = int(fields.get("root_id",
                              fields.get("retry_of", m.header.msg_id)))
        if "retry_of" not in m.header.fields:
            roots.add(root)
        if m.delivered:
            delivered.add(root)
    dead = set(net.dead_letters)
    return {
        "messages_created_logical": len(roots),
        "messages_delivered_logical": len(delivered),
        "silent_loss": len(roots - delivered - dead),
    }


def _recovery_gaps(net: Network) -> dict:
    """Per-fault recovery gaps from the network's fault log.  The
    *loss window* of a fault is the stretch during which messages can
    still die against it: up to local confirmation (fault + detection
    delay) when the fast-reroute backups take over at that point, up to
    global convergence of the notification flood otherwise.
    ``cycles_of_loss`` sums the windows — the recovery-gap figure the
    chaos campaigns and the CI lane gate on."""
    events = []
    loss = 0
    for rec in net.fault_log:
        end = rec["confirmed"] if rec["fast_reroute"] else rec["converged"]
        if end is None:            # still outstanding when the run ended
            end = net.cycle
        gap = int(end) - int(rec["cycle"])
        events.append({**rec, "loss_window": gap})
        loss += gap
    return {"fault_events": events, "cycles_of_loss": loss}


def _sweep(specs: list[WorkloadSpec], label: str, workers: int,
           cache: bool, progress, stats) -> list[dict]:
    from .pool import run_sweep
    return run_sweep(specs, workers=workers, cache=cache,
                     progress=progress, label=label, stats=stats)


def latency_vs_load(topology_factory, algorithm: str,
                    loads: list[float], workers: int = 0,
                    cache: bool = False, progress=False, stats=None,
                    **kw) -> list[dict]:
    """Latency/throughput curve over offered load (one fresh network
    per point)."""
    specs = [WorkloadSpec(topology=topology_factory(), algorithm=algorithm,
                          load=load, drain=False, **kw)
             for load in loads]
    return _sweep(specs, f"latency_vs_load[{algorithm}]", workers, cache,
                  progress, stats)


def saturation_throughput(points: list[dict]) -> float:
    """Accepted throughput at the highest offered load (flits/node/
    cycle) — the classic saturation measure."""
    return max(p["throughput_flits_node_cycle"] for p in points)


def sweep_fault_rng(seed: int, n: int) -> np.random.Generator:
    """Per-point fault RNG for the fault sweeps.  Sequence seeding
    ``[seed, n]`` keeps every (base seed, point) stream distinct —
    the additive ``seed + n`` it replaces collided across sweeps with
    adjacent base seeds (seed 7 point 1 == seed 6 point 2)."""
    return np.random.default_rng([seed, n])


def mesh_fault_sweep(algorithm: str, n_faults_list: list[int],
                     width: int = 8, height: int = 8, seed: int = 7,
                     workers: int = 0, cache: bool = False,
                     progress=False, stats=None, **kw) -> list[dict]:
    """NAFTA-style experiment: fixed moderate load, increasing numbers
    of random (connectivity-preserving) link faults."""
    specs = []
    for n in n_faults_list:
        topo = Mesh2D(width, height)
        rng = sweep_fault_rng(seed, n)
        links = random_link_faults(topo, n, rng) if n else []
        specs.append(WorkloadSpec(topology=topo, algorithm=algorithm,
                                  fault_links=links, seed=seed, **kw))
    out = _sweep(specs, f"mesh_fault_sweep[{algorithm}]", workers, cache,
                 progress, stats)
    for res, n in zip(out, n_faults_list):
        res["n_link_faults"] = n
    return out


def cube_fault_sweep(algorithm: str, n_faults_list: list[int],
                     dimension: int = 4, seed: int = 3,
                     workers: int = 0, cache: bool = False,
                     progress=False, stats=None, **kw) -> list[dict]:
    specs = []
    for n in n_faults_list:
        topo = Hypercube(dimension)
        rng = sweep_fault_rng(seed, n)
        nodes = []
        while len(nodes) < n:
            cand = int(rng.integers(0, topo.n_nodes))
            if cand not in nodes:
                nodes.append(cand)
        specs.append(WorkloadSpec(topology=topo, algorithm=algorithm,
                                  fault_nodes=nodes, seed=seed, **kw))
    out = _sweep(specs, f"cube_fault_sweep[{algorithm}]", workers, cache,
                 progress, stats)
    for res, n in zip(out, n_faults_list):
        res["n_node_faults"] = n
    return out


def decision_time_sweep(topology_factory, algorithm: str,
                        cycles_per_step_list: list[int],
                        workers: int = 0, cache: bool = False,
                        progress=False, stats=None, **kw) -> list[dict]:
    """The [DLO97] experiment: impact of routing-decision time on
    network latency."""
    specs = [WorkloadSpec(topology=topology_factory(), algorithm=algorithm,
                          cycles_per_step=cps, **kw)
             for cps in cycles_per_step_list]
    out = _sweep(specs, f"decision_time_sweep[{algorithm}]", workers, cache,
                 progress, stats)
    for res, cps in zip(out, cycles_per_step_list):
        res["cycles_per_step"] = cps
    return out

"""The paper's reported numbers (Tables 1 and 2 plus Section 5 prose),
kept verbatim so every benchmark prints paper-vs-measured."""

from __future__ import annotations

# Table 1: Rule bases of NAFTA — (entries, width, fcfbs, meaning, nft)
PAPER_TABLE1 = {
    "incoming_message": (1024, 8, "2 x magnitude comparator, minimum "
                         "selection, mesh distance computation, membership "
                         "testing", "handling of an incoming message", True),
    "in_message_ft": (256, 7, "logical unit, minimum selection",
                      "routing decision in ft mode", False),
    "update_dir_table": (64, 28, "set subtraction",
                         "new fault states require update of data", False),
    "message_finished": (64, 8, "minimum selection, 4 decrementors",
                         "fair output scheduling", True),
    "calculate_new_node_state": (64, 9, "computation in a finite lattice, "
                                 "set difference, state comparison",
                                 "status from a neighbor node or change of "
                                 "a link state", False),
    "test_exception": (32, 9, "membership testing",
                       "handling of messages in a special situation", False),
    "tell_my_neighbors": (16, 4, "no FCFB needed",
                          "generation of messages to adjacent nodes", True),
    "flit_finished": (4, 4, "decrementor, adder, comparator",
                      "update adaptivity criterion", True),
    "fault_occured": (3, 4, "2 x membership testing, set union",
                      "update of node state on failure", False),
    "message_from_info_channel": (2, 3, "no FCFB needed",
                                  "update of adaptivity or fault "
                                  "information", True),
    "consider_neighbor_state": (2, 7, "incrementor, computation in a finite "
                                "lattice, integer comparison with const.",
                                "consistency of neighboring states", False),
}

# Table 2: Rule bases of ROUTE_C for dimension d, adaptivity width a —
# (entries(d, a), width(d, a), fcfbs, meaning, nft); d=6, a=2 shown in
# the paper's running 64-node example.
PAPER_TABLE2 = {
    "decide_dir": (lambda d, a: 512, lambda d, a: 4,
                   "6 logical units d bits wide: AND, zero check, input "
                   "negate", "decides which outputs can be taken", True),
    "decide_vc": (lambda d, a: 4 * d, lambda d, a: 1 + a,
                  "minimum selection (same as NAFTA), compare with constant",
                  "decide output and virt. channel, update adaptivity",
                  False),
    "update_state": (lambda d, a: 180, lambda d, a: 7,
                     "conditional increment, compare with constant",
                     "state update requires counting of unsafe or faulty "
                     "neighbors", False),
    "adaptivity": (lambda d, a: 0, lambda d, a: 0,
                   "create adaptivity criterion, no details given",
                   "adaptivity criterion (unspecified)", True),
}

# Section 5 prose numbers
PAPER = {
    # registers
    "nafta_register_bits": 159,
    "nafta_register_count": 8,
    "nafta_register_bits_ft_only": 47,
    "route_c_register_bits": lambda d: 15 * d + 2 * max(1, (d - 1).bit_length()) + 3,
    "route_c_register_count": 9,
    "route_c_register_bits_nft": lambda d: 9 * d,
    # interpretation steps per routing decision
    "nafta_steps_fault_free": 1,
    "nafta_steps_worst": 3,
    "route_c_steps": 2,
    "nft_steps": 1,
    # the merged decide_dir+decide_vc rule base
    "merged_entries": lambda d: 1024 * 2 ** d,
    "merged_width": lambda d, a: d + 1 + a,
    # total ROUTE_C rule table memory for the 64-node example
    "route_c_total_bits_d6_a2": 2960,
    # virtual channels
    "nafta_vcs": 2,
    "route_c_vcs": 5,
}


def paper_table2_row(name: str, d: int, a: int):
    entries_fn, width_fn, fcfbs, meaning, nft = PAPER_TABLE2[name]
    return entries_fn(d, a), width_fn(d, a), fcfbs, meaning, nft

"""Parallel sweep engine with a content-addressed result cache.

The paper's evaluation is reproduced by sweeping many fully independent
simulation points (loads, fault counts, seeds, algorithms).  This
module fans a batch of :class:`~repro.experiments.runners.WorkloadSpec`
points out over a :class:`concurrent.futures.ProcessPoolExecutor` and
memoizes every point's result on disk under a content address, so
re-running a sweep only simulates points whose spec *or* code changed.

Design constraints the engine enforces:

* **Process safety** — workers receive ``spec.to_dict()`` payloads
  (topology *descriptions*, never live ``Topology`` objects) and
  rebuild the simulation from scratch; message ids are allocated
  per-``Network``, so results are byte-identical whether a point runs
  in-process, in a worker, or is replayed from the cache.
* **Submission order** — results come back in the order the specs were
  given, regardless of worker completion order.
* **Content addressing** — the cache key is
  ``sha256(code_version_token + canonical spec JSON)``; the code token
  hashes every ``repro`` source and ruleset file, so any change to the
  simulator, the routing algorithms or the DSL invalidates all cached
  points automatically.  Cache layout: one
  ``benchmarks/results/cache/<key>.json`` per point holding
  ``{schema, key, code_token, spec, result}``.
"""

from __future__ import annotations

import json
import os
import sys
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from hashlib import sha256
from pathlib import Path

from .harness import results_dir
from .runners import WorkloadSpec, run_workload

#: bump to invalidate every cache entry independently of source changes
CACHE_SCHEMA = 1

_code_token: str | None = None


def code_version_token() -> str:
    """Hash of the whole ``repro`` package source (``*.py`` and the
    ``*.rules`` rulesets), memoized per process.  Simulation results
    are a function of (spec, code); this is the code half of the cache
    key."""
    global _code_token
    if _code_token is None:
        root = Path(__file__).resolve().parents[1]
        h = sha256()
        h.update(f"schema={CACHE_SCHEMA}".encode())
        files = sorted(list(root.rglob("*.py")) + list(root.rglob("*.rules")))
        for path in files:
            h.update(b"\0")
            h.update(path.relative_to(root).as_posix().encode())
            h.update(b"\0")
            h.update(path.read_bytes())
        _code_token = h.hexdigest()[:20]
    return _code_token


def default_cache_dir() -> Path:
    """``benchmarks/results/cache/`` (follows ``REPRO_RESULTS_DIR``)."""
    return results_dir() / "cache"


def effective_workers(requested: int, n_payloads: int) -> int:
    """The process count a ``workers=N`` request actually gets.

    Never more workers than payloads, and never more than
    ``os.cpu_count()``: on a 1-CPU machine a process pool cannot run
    two workers concurrently, so fan-out only pays fork + pickle
    overhead (measured as ``parallel_speedup`` 0.83 in
    BENCH_engine.json).  Anything that clamps to <= 1 runs serially
    in-process through the same worker entry point, which is
    byte-identical by construction."""
    return min(int(requested), n_payloads, os.cpu_count() or 1)


def _run_spec_dict(payload: dict) -> dict:
    """Worker entry point: rebuild the spec (topology included) inside
    the worker process and run it.  Top-level so it pickles."""
    return run_workload(WorkloadSpec.from_dict(payload))


def _cache_load(path: Path, key: str) -> dict | None:
    try:
        with open(path) as fh:
            blob = json.load(fh)
    except (OSError, ValueError):
        return None
    if blob.get("schema") != CACHE_SCHEMA or blob.get("key") != key:
        return None
    return blob.get("result")


def _cache_store(path: Path, key: str, token: str, spec_dict: dict,
                 result: dict) -> None:
    blob = {"schema": CACHE_SCHEMA, "key": key, "code_token": token,
            "spec": spec_dict, "result": result}
    tmp = path.with_name(path.name + f".tmp{os.getpid()}")
    try:
        tmp.write_text(json.dumps(blob, sort_keys=True) + "\n")
        os.replace(tmp, path)  # atomic: concurrent sweeps never see torn files
    except OSError:
        tmp.unlink(missing_ok=True)


class _Progress:
    """Per-sweep progress lines: done/total, cache hits, ETA from the
    simulated-point rate (cache hits are ~free and would skew it)."""

    def __init__(self, sink, label: str, total: int, hits: int):
        self.sink = (sink if callable(sink)
                     else (lambda line: print(line, file=sys.stderr,
                                              flush=True)))
        self.enabled = bool(sink)
        self.label = label
        self.total = total
        self.hits = hits
        self.done = hits
        self.t0 = time.perf_counter()

    def tick(self) -> None:
        self.done += 1
        if not self.enabled:
            return
        elapsed = time.perf_counter() - self.t0
        simulated = self.done - self.hits
        rate = simulated / elapsed if elapsed > 0 else 0.0
        left = self.total - self.done
        eta = f"{left / rate:5.1f}s" if rate > 0 else "  ?  "
        self.sink(f"[{self.label}] {self.done}/{self.total} done "
                  f"({self.hits} cache hits), ETA {eta}")


def run_parallel(payloads, worker, *, workers: int = 0, progress=False,
                 label: str = "batch", stats: dict | None = None,
                 hits: int = 0, total: int | None = None) -> list:
    """Fan ``payloads`` out over a process pool, results in submission
    order.

    The generic core of :func:`run_sweep`, also used by the conformance
    harness: ``worker`` must be a top-level (picklable) callable taking
    one payload.  ``workers`` is clamped by :func:`effective_workers`
    (never more processes than payloads or CPUs); ``workers=0`` (or 1,
    or any request on a single-CPU machine) runs in-process through the
    same entry point, so serial and parallel runs are identical by
    construction.  ``hits``/``total`` only pre-load the progress
    display for callers that satisfied some points elsewhere (e.g. from
    a cache).
    """
    payloads = list(payloads)
    t0 = time.perf_counter()
    results: list = [None] * len(payloads)
    prog = _Progress(progress, label,
                     total if total is not None else len(payloads), hits)
    n_workers = effective_workers(workers, len(payloads))
    if n_workers > 1:
        with ProcessPoolExecutor(max_workers=n_workers) as pool:
            futures = {pool.submit(worker, p): i
                       for i, p in enumerate(payloads)}
            for fut in as_completed(futures):
                results[futures[fut]] = fut.result()
                prog.tick()
    else:
        for i, payload in enumerate(payloads):
            results[i] = worker(payload)
            prog.tick()
    if stats is not None:
        stats.update(total=len(payloads), workers=n_workers,
                     wall_s=time.perf_counter() - t0)
    return results


def run_sweep(specs, *, workers: int = 0, cache: bool = False,
              cache_dir=None, progress=False, label: str = "sweep",
              stats: dict | None = None) -> list[dict]:
    """Run a batch of workload specs, in submission order.

    ``workers=0`` (or 1) runs in-process; ``workers=N`` fans the
    uncached points out over at most N worker processes (clamped by
    :func:`effective_workers` to the point count and the machine's
    CPUs — a 1-CPU machine always runs serially).  ``cache=True`` reads
    and writes the content-addressed result cache (``cache_dir``
    defaults to :func:`default_cache_dir`).  ``progress`` is ``False``,
    ``True`` (lines to stderr) or a callable sink.  ``stats``, if
    given, is filled with ``total`` / ``cache_hits`` / ``simulated`` /
    ``workers`` / ``wall_s``.
    """
    specs = list(specs)
    t0 = time.perf_counter()
    token = code_version_token()
    keys = [spec.spec_key(token) for spec in specs]
    payloads = [spec.to_dict() for spec in specs]
    results: list[dict | None] = [None] * len(specs)

    cdir = Path(cache_dir) if cache_dir is not None else default_cache_dir()
    hits = 0
    if cache:
        cdir.mkdir(parents=True, exist_ok=True)
        for i, key in enumerate(keys):
            res = _cache_load(cdir / f"{key}.json", key)
            if res is not None:
                results[i] = res
                hits += 1

    todo = [i for i, res in enumerate(results) if res is None]
    sub = run_parallel([payloads[i] for i in todo], _run_spec_dict,
                       workers=workers, progress=progress, label=label,
                       hits=hits, total=len(specs))
    for i, res in zip(todo, sub):
        results[i] = res

    if cache:
        for i in todo:
            _cache_store(cdir / f"{keys[i]}.json", keys[i], token,
                         payloads[i], results[i])

    if stats is not None:
        stats.update(total=len(specs), cache_hits=hits, simulated=len(todo),
                     workers=effective_workers(workers, len(todo)),
                     wall_s=time.perf_counter() - t0)
    return results

"""Tiny ASCII charts for the text reports (no plotting dependency).

Used by the benchmark harness to render latency-vs-load curves and
sweeps directly into ``benchmarks/results/*.txt``.
"""

from __future__ import annotations

import math


def _fmt_tick(v: float) -> str:
    if v == 0:
        return "0"
    if abs(v) >= 100:
        return f"{v:.0f}"
    if abs(v) >= 1:
        return f"{v:.3g}"
    return f"{v:.2g}"


def line_chart(series: dict[str, list[tuple[float, float]]],
               width: int = 56, height: int = 14,
               title: str = "", x_label: str = "", y_label: str = "",
               y_log: bool = False) -> str:
    """Plot one or more (x, y) series as an ASCII scatter/line chart.

    Each series gets a distinct marker; points are clipped to the
    bounding box of all finite data.
    """
    markers = "*o+x#@%&"
    pts_all = [(x, y) for pts in series.values() for x, y in pts
               if math.isfinite(x) and math.isfinite(y)
               and (not y_log or y > 0)]
    if not pts_all:
        return f"{title}\n  (no data)"
    xs = [p[0] for p in pts_all]
    ys = [math.log10(p[1]) if y_log else p[1] for p in pts_all]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    if x_hi == x_lo:
        x_hi = x_lo + 1
    if y_hi == y_lo:
        y_hi = y_lo + 1

    grid = [[" "] * width for _ in range(height)]
    for (name, pts), marker in zip(series.items(), markers):
        for x, y in pts:
            if not (math.isfinite(x) and math.isfinite(y)):
                continue
            if y_log:
                if y <= 0:
                    continue
                y = math.log10(y)
            col = round((x - x_lo) / (x_hi - x_lo) * (width - 1))
            row = round((y - y_lo) / (y_hi - y_lo) * (height - 1))
            grid[height - 1 - row][col] = marker

    y_top = 10 ** y_hi if y_log else y_hi
    y_bot = 10 ** y_lo if y_log else y_lo
    lines = []
    if title:
        lines.append(title)
    axis_w = max(len(_fmt_tick(y_top)), len(_fmt_tick(y_bot)))
    for i, row in enumerate(grid):
        if i == 0:
            label = _fmt_tick(y_top).rjust(axis_w)
        elif i == height - 1:
            label = _fmt_tick(y_bot).rjust(axis_w)
        else:
            label = " " * axis_w
        lines.append(f"  {label} |{''.join(row)}|")
    x_axis = f"  {' ' * axis_w} +{'-' * width}+"
    lines.append(x_axis)
    left = _fmt_tick(x_lo)
    right = _fmt_tick(x_hi)
    pad = width - len(left) - len(right)
    lines.append(f"  {' ' * axis_w}  {left}{' ' * max(1, pad)}{right}"
                 f"  {x_label}")
    legend = "   ".join(f"{m}={name}"
                        for (name, _), m in zip(series.items(), markers))
    lines.append(f"  {' ' * axis_w}  [{legend}]"
                 + (f"  y: {y_label}" if y_label else "")
                 + ("  (log y)" if y_log else ""))
    return "\n".join(lines)

"""Graph-level reachability utilities over the healthy subnetwork."""

from __future__ import annotations

import networkx as nx

from ..sim.faults import FaultState
from ..sim.topology import Topology


def healthy_graph(topology: Topology, faults: FaultState) -> nx.Graph:
    """The subgraph of working nodes and links."""
    g = nx.Graph()
    for n in topology.nodes():
        if faults.node_ok(n):
            g.add_node(n)
    for a, b in topology.links():
        if faults.link_ok(a, b):
            g.add_edge(a, b)
    return g


def connected_pairs(topology: Topology, faults: FaultState
                    ) -> list[tuple[int, int]]:
    """All ordered pairs (src, dst), src != dst, connected over healthy
    links — the pairs Condition 3 makes claims about."""
    g = healthy_graph(topology, faults)
    out: list[tuple[int, int]] = []
    for comp in nx.connected_components(g):
        nodes = sorted(comp)
        for s in nodes:
            for d in nodes:
                if s != d:
                    out.append((s, d))
    return out


def partition_summary(topology: Topology, faults: FaultState) -> dict:
    g = healthy_graph(topology, faults)
    comps = sorted((len(c) for c in nx.connected_components(g)), reverse=True)
    return {
        "alive_nodes": g.number_of_nodes(),
        "alive_links": g.number_of_edges(),
        "components": len(comps),
        "largest_component": comps[0] if comps else 0,
    }


def fraction_links_usable_by_tree(topology: Topology,
                                  faults: FaultState) -> float:
    """How small a fraction of links a spanning tree uses (the paper's
    argument against the trivial fault-tolerant algorithm)."""
    g = healthy_graph(topology, faults)
    if g.number_of_edges() == 0:
        return 0.0
    tree_edges = g.number_of_nodes() - nx.number_connected_components(g)
    return tree_edges / g.number_of_edges()

"""Channel-dependency-graph (CDG) deadlock analysis.

Dally/Seitz [DaS87], which the paper builds on: a wormhole routing
algorithm is deadlock-free iff the dependency graph over its virtual
channels is acyclic.  This module *extracts* that graph from a routing
algorithm by exploring its reachable routing relation:

* start from every injection state (source node, local port, initial
  header) for every destination;
* at each reachable state, the candidate set of ``route`` yields
  dependency edges from the channel the head currently holds to every
  channel it may request next, and successor states (with the header
  evolved through ``route``'s own mutations plus ``on_depart``);
* iterate to fixpoint over the finite state space
  (node x in-port x vc x destination x canonical header state).

Exploring only *reachable* states matters: a coarse all-states probe
manufactures dependencies no real message can exercise (e.g. a minimal
mesh message that arrived moving west but wants to go east) and reports
false cycles.

This turns the deadlock-freedom arguments in the routing module
docstrings into machine-checked facts (``tests/analysis`` and
``benchmarks/bench_deadlock.py``).

A channel is ``(node, out_port, vc)`` — the sending side of a virtual
channel.  Local injection channels have no incoming dependencies and
ejection channels no outgoing ones, so neither can lie on a cycle.
"""

from __future__ import annotations

import copy
from collections import deque
from dataclasses import dataclass

import networkx as nx

from ..routing.base import RoutingAlgorithm
from ..sim.flit import Header
from ..sim.network import Network
from ..sim.router import LOCAL
from ..sim.topology import Topology

Channel = tuple[int, int, int]   # (node, out_port, vc)

#: header fields that never influence the candidate *set* and only
#: bloat the canonical state space (path_len influences only the
#: livelock cut-off, which fires long after any cycle would)
_IGNORED_FIELDS = {"path_len", "trace", "_wraps_next", "_detour_next"}


def _canon_fields(fields: dict) -> frozenset:
    return frozenset((k, v) for k, v in fields.items()
                     if k not in _IGNORED_FIELDS
                     and not isinstance(v, (list, dict)))


@dataclass
class CdgResult:
    graph: nx.DiGraph
    cycle: list[Channel] | None = None
    states: int = 0

    @property
    def acyclic(self) -> bool:
        return self.cycle is None

    def summary(self) -> dict:
        return {
            "channels": self.graph.number_of_nodes(),
            "dependencies": self.graph.number_of_edges(),
            "acyclic": self.acyclic,
            "reachable_states": self.states,
        }


def build_cdg(network: Network, max_states: int = 2_000_000) -> CdgResult:
    """Extract the reachable channel dependency graph."""
    algo = network.algorithm
    topo = network.topology
    g: nx.DiGraph = nx.DiGraph()

    # state = (node, in_port, in_vc, dst, canonical header fields)
    seen: set[tuple] = set()
    queue: deque[tuple[int, int, int, int, dict]] = deque()

    for src in topo.nodes():
        if not network.faults.node_ok(src):
            continue
        for dst in topo.nodes():
            if dst == src or not network.faults.node_ok(dst):
                continue
            if not algo.accepts(src, dst):
                continue
            state = (src, LOCAL, 0, dst, {})
            key = (src, LOCAL, 0, dst, _canon_fields({}))
            if key not in seen:
                seen.add(key)
                queue.append(state)

    while queue:
        if len(seen) > max_states:
            raise RuntimeError(f"CDG state space exceeded {max_states}")
        node, in_port, in_vc, dst, fields = queue.popleft()
        if node == dst:
            continue
        hdr = Header(msg_id=-1, src=-1, dst=dst, length=2, created=0,
                     fields=copy.deepcopy(fields))
        decision = algo.route(network.routers[node], hdr, in_port, in_vc)
        if decision.deliver or decision.stuck:
            continue
        if in_port == LOCAL:
            holding = None
        else:
            p = network.routers[node].ports[in_port]
            holding = (p.neighbor, p.neighbor_port, in_vc)
        for out_port, out_vc in decision.candidates:
            if out_port == LOCAL:
                continue
            p = topo.port(node, out_port)
            if p is None:
                continue
            out_ch = (node, out_port, out_vc)
            g.add_node(out_ch)
            if holding is not None:
                g.add_edge(holding, out_ch)
            nhdr = Header(msg_id=-1, src=-1, dst=dst, length=2, created=0,
                          fields=copy.deepcopy(hdr.fields))
            algo.on_depart(network.routers[node], nhdr, out_port, out_vc)
            nstate = (p.neighbor, p.neighbor_port, out_vc, dst, nhdr.fields)
            key = (p.neighbor, p.neighbor_port, out_vc, dst,
                   _canon_fields(nhdr.fields))
            if key not in seen:
                seen.add(key)
                queue.append(nstate)

    try:
        cycle_edges = nx.find_cycle(g)
        cycle = [e[0] for e in cycle_edges] + [cycle_edges[-1][1]]
    except nx.NetworkXNoCycle:
        cycle = None
    return CdgResult(graph=g, cycle=cycle, states=len(seen))


def check_deadlock_free(topology: Topology, algorithm: RoutingAlgorithm,
                        fault_schedule=None) -> CdgResult:
    """Convenience: build a network, apply static faults, extract CDG."""
    net = Network(topology, algorithm)
    if fault_schedule is not None:
        net.schedule_faults(fault_schedule)
    return build_cdg(net)

"""Analysis tools: channel-dependency-graph deadlock checks, the
paper's Conditions 1-3, and reachability utilities."""

from .conditions import (Condition1Result, ConditionPairStats,
                         check_condition1, check_conditions_2_3)
from .deadlock import CdgResult, Channel, build_cdg, check_deadlock_free
from .livelock import (PathInflation, ProgressCertificate,
                       certify_progress, nafta_bound, path_inflation)
from .reachability import (connected_pairs, fraction_links_usable_by_tree,
                           healthy_graph, partition_summary)

__all__ = [
    "Condition1Result", "ConditionPairStats", "check_condition1",
    "check_conditions_2_3", "CdgResult", "Channel", "build_cdg", "check_deadlock_free", "connected_pairs",
    "PathInflation", "ProgressCertificate", "certify_progress",
    "nafta_bound", "path_inflation",
    "fraction_links_usable_by_tree", "healthy_graph", "partition_summary",
]

"""Checkers for the paper's Conditions 1-3 on fault-tolerant routing
algorithms (Section 2.1).

Condition 1: if all links of all minimal paths between source and
destination are unbroken, every such path can be selected dependent on
load — the definition of fully adaptive minimal routing.

Condition 2: if at least one minimal path survives, the algorithm uses
a minimal path (not necessarily choosing among all of them).

Condition 3: if any path exists (possibly non-minimal), the message is
still routed.

The checkers quantify the degree to which an algorithm meets each
condition — the paper stresses that most practical algorithms trade
Condition 3 away for constant memory, which is exactly what the NAFTA
benchmarks show.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass

import networkx as nx

from ..sim.faults import FaultSchedule, FaultState
from ..sim.flit import Header
from ..sim.network import Network
from ..sim.router import LOCAL
from ..sim.topology import Topology


# ---------------------------------------------------------------------------
# Condition 1: full minimal adaptivity (fault-free)
# ---------------------------------------------------------------------------

@dataclass
class Condition1Result:
    pairs_checked: int
    pairs_fully_adaptive: int
    missing: list[tuple[int, int, int]]  # (src, dst, node) where a
    #                                      minimal direction was not offered

    @property
    def satisfied(self) -> bool:
        return self.pairs_checked == self.pairs_fully_adaptive


def _minimal_ports(topology: Topology, node: int, dst: int) -> list[int]:
    if hasattr(topology, "minimal_ports"):
        return topology.minimal_ports(node, dst)  # type: ignore[attr-defined]
    if hasattr(topology, "differing_dimensions"):
        return topology.differing_dimensions(node, dst)  # type: ignore[attr-defined]
    raise TypeError(f"no minimal-port helper for {type(topology).__name__}")


def check_condition1(network: Network,
                     pairs: list[tuple[int, int]]) -> Condition1Result:
    """Walk every minimal-path prefix; at each reachable node the
    candidate set must cover every minimal direction."""
    algo = network.algorithm
    topo = network.topology
    ok_pairs = 0
    missing: list[tuple[int, int, int]] = []
    for src, dst in pairs:
        good = True
        seen: set[tuple[int, frozenset]] = set()
        hdr0 = Header(msg_id=-2, src=src, dst=dst, length=2, created=0)
        stack = [(src, LOCAL, 0, hdr0)]
        while stack:
            node, in_port, in_vc, hdr = stack.pop()
            if node == dst:
                continue
            key = (node, frozenset(
                (k, v) for k, v in hdr.fields.items()
                if not isinstance(v, (list, dict))))
            if key in seen:
                continue
            seen.add(key)
            decision = algo.route(network.routers[node], hdr, in_port, in_vc)
            minimal = set(_minimal_ports(topo, node, dst))
            offered = {p for p, _ in decision.candidates}
            if not minimal <= offered:
                good = False
                missing.append((src, dst, node))
                continue
            for port, vc in decision.candidates:
                if port not in minimal:
                    continue
                p = topo.port(node, port)
                if p is None:
                    continue
                nhdr = Header(msg_id=-2, src=src, dst=dst, length=2,
                              created=0, fields=copy.deepcopy(hdr.fields))
                algo.on_depart(network.routers[node], nhdr, port, vc)
                stack.append((p.neighbor, p.neighbor_port, vc, nhdr))
        if good:
            ok_pairs += 1
    return Condition1Result(len(pairs), ok_pairs, missing)


# ---------------------------------------------------------------------------
# Conditions 2 and 3: simulation-based checks under faults
# ---------------------------------------------------------------------------

@dataclass
class ConditionPairStats:
    pairs: int = 0
    delivered: int = 0
    minimal: int = 0            # delivered over a minimal path
    refused: int = 0            # rejected at the source (accepts())
    stuck: int = 0              # declared unroutable in flight

    @property
    def delivery_rate(self) -> float:
        return self.delivered / self.pairs if self.pairs else 1.0

    @property
    def minimal_rate(self) -> float:
        return self.minimal / self.pairs if self.pairs else 1.0


def _healthy_graph(topology: Topology, faults: FaultState) -> nx.Graph:
    g = nx.Graph()
    for n in topology.nodes():
        if faults.node_ok(n):
            g.add_node(n)
    for a, b in topology.links():
        if faults.link_ok(a, b):
            g.add_edge(a, b)
    return g


def _minimal_path_survives(topology: Topology, faults: FaultState,
                           src: int, dst: int) -> bool:
    g = _healthy_graph(topology, faults)
    if src not in g or dst not in g or not nx.has_path(g, src, dst):
        return False
    return nx.shortest_path_length(g, src, dst) == topology.distance(src, dst)


def check_conditions_2_3(topology: Topology,
                         algorithm_factory,
                         fault_schedule: FaultSchedule,
                         pairs: list[tuple[int, int]],
                         message_length: int = 3,
                         max_cycles: int = 50_000) -> dict:
    """Per connected pair: was the message delivered (Condition 3) and,
    when a minimal path survives, was a minimal route used
    (Condition 2)?  Each pair runs in a fresh quiet network so blocking
    effects of other traffic do not pollute the check."""
    cond2 = ConditionPairStats()
    cond3 = ConditionPairStats()
    for src, dst in pairs:
        net = Network(topology, algorithm_factory())
        net.schedule_faults(fault_schedule)
        if not net.faults.connected(src, dst):
            continue  # conditions only speak about connected pairs
        minimal_alive = _minimal_path_survives(topology, net.faults, src, dst)
        # every connected pair counts for Condition 3; pairs with a
        # surviving minimal path additionally count for Condition 2
        cond3.pairs += 1
        if minimal_alive:
            cond2.pairs += 1
        msg = net.offer(src, dst, message_length)
        if msg is None:
            cond3.refused += 1
            if minimal_alive:
                cond2.refused += 1
            continue
        net.run_until_drained(max_cycles)
        if msg.delivered is not None:
            cond3.delivered += 1
            is_minimal = msg.hops == topology.distance(src, dst) + 1
            if minimal_alive:
                cond2.delivered += 1
                if is_minimal:
                    cond2.minimal += 1
            if is_minimal:
                cond3.minimal += 1
        else:
            cond3.stuck += 1
            if minimal_alive:
                cond2.stuck += 1
    return {"condition2": cond2, "condition3": cond3}

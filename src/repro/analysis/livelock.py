"""Livelock analysis (paper Section 3, "Lifelock Avoidance").

"To ensure delivery of all messages the path length has to be finite
... link faults can cause messages to use diversions and the path for a
message is prolonged."  The paper's remedy — marking misrouted messages
and bounding them with a path-length counter in the header — is
implemented by the routing algorithms; this module quantifies the
result: the path-inflation distribution (hops taken vs minimal
distance), the guard bound, and a progress certificate for a finished
run (every accepted message either delivered within the bound or
explicitly declared unroutable — nothing circulates forever).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..sim.network import Network


@dataclass
class PathInflation:
    """Distribution of hops / minimal-distance over delivered messages."""

    samples: np.ndarray
    bound: int | None

    @property
    def mean(self) -> float:
        return float(self.samples.mean()) if self.samples.size else 1.0

    @property
    def max(self) -> float:
        return float(self.samples.max()) if self.samples.size else 1.0

    @property
    def misrouted_share(self) -> float:
        if not self.samples.size:
            return 0.0
        return float((self.samples > 1.0).mean())

    def percentile(self, q: float) -> float:
        if not self.samples.size:
            return 1.0
        return float(np.percentile(self.samples, q))

    def summary(self) -> dict:
        return {
            "messages": int(self.samples.size),
            "mean_inflation": self.mean,
            "p99_inflation": self.percentile(99),
            "max_inflation": self.max,
            "misrouted_share": self.misrouted_share,
            "bound": self.bound,
        }


def path_inflation(network: Network, bound: int | None = None
                   ) -> PathInflation:
    """Hops / minimal distance for every delivered, measured message.

    ``hops`` counts the ejection hop too, so the minimal value of the
    ratio is (distance + 1) / distance; we normalize it out by
    comparing against distance + 1.
    """
    topo = network.topology
    ratios = []
    for msg in network.messages.values():
        if msg.delivered is None:
            continue
        d = topo.distance(msg.header.src, msg.header.dst)
        if d == 0:
            continue
        ratios.append(msg.hops / (d + 1))
    return PathInflation(samples=np.asarray(ratios, dtype=float),
                         bound=bound)


@dataclass
class ProgressCertificate:
    """Outcome accounting proving the absence of livelock in a run."""

    accepted: int
    delivered: int
    declared_unroutable: int
    ripped_by_faults: int
    in_flight: int
    max_hops: int
    bound: int | None

    @property
    def holds(self) -> bool:
        closed = (self.delivered + self.declared_unroutable
                  + self.ripped_by_faults == self.accepted)
        drained = self.in_flight == 0
        bounded = self.bound is None or self.max_hops <= self.bound
        return closed and drained and bounded


def certify_progress(network: Network,
                     bound: int | None = None) -> ProgressCertificate:
    """Check a *drained* network: every message accounted for, every
    completed path within the livelock bound."""
    delivered = 0
    stuck = 0
    ripped = 0
    max_hops = 0
    for msg in network.messages.values():
        if msg.delivered is not None:
            delivered += 1
            max_hops = max(max_hops, msg.hops)
        elif msg.header.fields.get("stuck"):
            stuck += 1
        elif msg.dropped:
            ripped += 1
    return ProgressCertificate(
        accepted=len(network.messages), delivered=delivered,
        declared_unroutable=stuck, ripped_by_faults=ripped,
        in_flight=network.in_flight(), max_hops=max_hops, bound=bound)


def nafta_bound(network: Network) -> int:
    """The livelock guard NAFTA carries in its header counter."""
    algo = network.algorithm
    topo = network.topology
    factor = getattr(algo, "livelock_factor", 4)
    return factor * (topo.width + topo.height) + 16 + 2

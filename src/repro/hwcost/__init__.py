"""Hardware cost accounting: rule-table sizes, FCFB inventories,
register bits, fault-tolerance overhead (paper Section 5)."""

from .report import render_registers, render_table1, render_table2
from .tables import CostReport, RegisterRow, RuleBaseRow, cost_report

__all__ = ["render_registers", "render_table1", "render_table2",
           "CostReport", "RegisterRow", "RuleBaseRow", "cost_report"]

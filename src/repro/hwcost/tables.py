"""Hardware-cost table computation: regenerates the paper's Tables 1/2
and the register/overhead accounting of Section 5 from compiled
rulesets."""

from __future__ import annotations

from dataclasses import dataclass

from ..core.compiler import CompiledProgram
from ..routing.rulesets.loader import RULESETS, compile_ruleset


@dataclass
class RuleBaseRow:
    name: str
    entries: int
    width: int
    size_bits: int
    fcfbs: dict[str, int]
    nft: bool

    def fcfb_text(self) -> str:
        if not self.fcfbs:
            return "no FCFB needed"
        return ", ".join((f"{n} x {k}" if n > 1 else k)
                         for k, n in sorted(self.fcfbs.items()))


@dataclass
class RegisterRow:
    name: str
    bits: int
    cells: int
    writers: list[str]
    readers: list[str]
    ft_only: bool


@dataclass
class CostReport:
    ruleset: str
    params: dict
    rows: list[RuleBaseRow]
    registers: list[RegisterRow]

    @property
    def total_table_bits(self) -> int:
        return sum(r.size_bits for r in self.rows)

    @property
    def nft_table_bits(self) -> int:
        return sum(r.size_bits for r in self.rows if r.nft)

    @property
    def ft_only_table_bits(self) -> int:
        return self.total_table_bits - self.nft_table_bits

    @property
    def total_register_bits(self) -> int:
        return sum(r.bits for r in self.registers)

    @property
    def ft_only_register_bits(self) -> int:
        return sum(r.bits for r in self.registers if r.ft_only)

    @property
    def register_count(self) -> int:
        return len(self.registers)

    def fcfb_pool(self) -> dict[str, int]:
        """Size of a shared FCFB pool: per kind, the maximum any single
        rule base needs (one base interprets at a time per interpreter;
        the paper: 'it is suggesting to use a common pool of
        resources')."""
        pool: dict[str, int] = {}
        for row in self.rows:
            for kind, n in row.fcfbs.items():
                pool[kind] = max(pool.get(kind, 0), n)
        return dict(sorted(pool.items()))

    def fcfb_unshared_total(self) -> int:
        """Total FCFB instances if every rule base had private blocks —
        the saving the shared pool realizes."""
        return sum(n for row in self.rows for n in row.fcfbs.values())

    def ft_overhead_fraction(self) -> float:
        """Share of the rule-table memory attributable to fault
        tolerance (the paper's headline: 'fault tolerance implies a
        considerable overhead')."""
        if self.total_table_bits == 0:
            return 0.0
        return self.ft_only_table_bits / self.total_table_bits


def _rows_from_compiled(compiled: CompiledProgram,
                        nft_bases: frozenset) -> list[RuleBaseRow]:
    rows = []
    for name, rb in compiled.rulebases.items():
        rows.append(RuleBaseRow(
            name=name, entries=rb.n_entries, width=rb.width,
            size_bits=rb.size_bits, fcfbs=rb.fcfb_kinds,
            nft=name in nft_bases))
    rows.sort(key=lambda r: -r.size_bits)
    return rows


def _registers_from_compiled(compiled: CompiledProgram,
                             nft_bases: frozenset) -> list[RegisterRow]:
    regs = []
    for rep in compiled.register_report():
        touchers = set(rep["readers"]) | set(rep["writers"])
        ft_only = bool(touchers) and not (touchers & nft_bases)
        regs.append(RegisterRow(
            name=rep["name"], bits=rep["bits"], cells=rep["cells"],
            writers=rep["writers"], readers=rep["readers"], ft_only=ft_only))
    regs.sort(key=lambda r: -r.bits)
    return regs


def cost_report(ruleset: str, params: dict | None = None,
                materialize: bool = True) -> CostReport:
    spec = RULESETS[ruleset]
    merged = dict(spec.default_params)
    merged.update(params or {})
    compiled = compile_ruleset(ruleset, merged, materialize=materialize)
    return CostReport(
        ruleset=ruleset, params=merged,
        rows=_rows_from_compiled(compiled, spec.nft_bases),
        registers=_registers_from_compiled(compiled, spec.nft_bases))

"""Text rendering of cost reports: the paper-vs-measured tables the
benchmarks print."""

from __future__ import annotations

from ..experiments.paper_data import (PAPER, PAPER_TABLE1, paper_table2_row)
from .tables import CostReport


def _fmt_size(entries: int, width: int) -> str:
    return f"{entries} x {width}"


def render_table1(report: CostReport) -> str:
    """NAFTA: our compiled rule bases next to the paper's Table 1."""
    lines = [
        "Table 1 — Rule bases of NAFTA (paper vs measured)",
        f"  parameters: {report.params}",
        f"  {'rule base':<26} {'paper size':>12} {'ours':>12} "
        f"{'nft':>4}  FCFBs (ours)",
        "  " + "-" * 100,
    ]
    for row in report.rows:
        paper = PAPER_TABLE1.get(row.name)
        psize = _fmt_size(paper[0], paper[1]) if paper else "?"
        lines.append(
            f"  {row.name:<26} {psize:>12} "
            f"{_fmt_size(row.entries, row.width):>12} "
            f"{'*' if row.nft else '':>4}  {row.fcfb_text()}")
    paper_total = sum(e * w for e, w, *_ in PAPER_TABLE1.values())
    lines.append("  " + "-" * 100)
    lines.append(f"  total table bits: paper {paper_total}, "
                 f"ours {report.total_table_bits} "
                 f"(nft-only {report.nft_table_bits}, "
                 f"ft share {report.ft_overhead_fraction():.0%})")
    pool = report.fcfb_pool()
    lines.append("  shared FCFB pool: "
                 + ", ".join((f"{n} x {k}" if n > 1 else k)
                             for k, n in pool.items()))
    lines.append(f"  pool size {sum(pool.values())} blocks vs "
                 f"{report.fcfb_unshared_total()} unshared — the sharing "
                 f"the paper's Figure 6 suggests")
    return "\n".join(lines)


def render_table2(report: CostReport) -> str:
    """ROUTE_C: our compiled rule bases next to the paper's Table 2."""
    d = int(report.params.get("d", 6))
    a = int(report.params.get("a", 2))
    lines = [
        f"Table 2 — Rule bases of ROUTE_C (d={d}, a={a})",
        f"  {'rule base':<14} {'paper size':>12} {'ours':>12} "
        f"{'nft':>4}  FCFBs (ours)",
        "  " + "-" * 96,
    ]
    paper_total = 0
    for row in report.rows:
        try:
            pe, pw, _, _, _ = paper_table2_row(row.name, d, a)
            paper_total += pe * pw
            psize = _fmt_size(pe, pw) if pe else "n/a"
        except KeyError:
            psize = "?"
        lines.append(
            f"  {row.name:<14} {psize:>12} "
            f"{_fmt_size(row.entries, row.width):>12} "
            f"{'*' if row.nft else '':>4}  {row.fcfb_text()}")
    lines.append("  " + "-" * 96)
    note = ""
    if d == 6 and a == 2:
        note = (f" (paper quotes {PAPER['route_c_total_bits_d6_a2']} bits "
                f"total for the 64-node example)")
    lines.append(f"  total table bits: paper {paper_total}{note}, "
                 f"ours {report.total_table_bits}")
    return "\n".join(lines)


def render_registers(report: CostReport) -> str:
    lines = [
        f"Registers of {report.ruleset} "
        f"({report.register_count} registers, "
        f"{report.total_register_bits} bits, "
        f"{report.ft_only_register_bits} bits only for fault tolerance)",
        f"  {'register':<16} {'bits':>5} {'cells':>6} {'ft-only':>8}  writers",
        "  " + "-" * 70,
    ]
    for r in report.registers:
        lines.append(f"  {r.name:<16} {r.bits:>5} {r.cells:>6} "
                     f"{'yes' if r.ft_only else 'no':>8}  "
                     f"{', '.join(r.writers) or '-'}")
    return "\n".join(lines)

"""Dynamic deadlock avoidance (Duato-style escape channels) — the
paper's Section 3 contrast case.

"Another group of deadlock avoidance concepts (e.g. [CyG94, PGF94]) can
be called dynamic because the state of the system is incorporated.  The
basis of this scheme is the existence of a static deadlock prevention
method.  Links can be used as long as there is space available in a
corresponding buffer ...  But this scheme is very vulnerable to faults.
For example the fault of one link can separate several node pairs in
the statically deadlock-free network which cannot be compensated by the
dynamic extensions.  Thus in this case already a single fault causes
reconfiguration of some network nodes."

Implementation: two virtual channels on a 2-D mesh.  VC1 is *fully
adaptive minimal* with no turn restriction; VC0 is the *escape*
network running deterministic XY.  A head may take any minimal VC1
output with buffer space, or fall onto its XY escape hop; once on the
escape network it stays there (the conservative variant of Duato's
protocol, which keeps the escape subnetwork self-contained and
draining).  Deadlock freedom follows from Duato's argument — note that
the adaptive channels *do* form dependency cycles, so this algorithm is
also the repository's living proof that CDG acyclicity is sufficient
but not necessary (see ``tests/analysis/test_duato.py``).

Fault behaviour is exactly the paper's: there is no fault handling at
all.  A message whose surviving paths all need a non-minimal detour —
most simply, an adjacent pair whose direct link died — is stuck: the
escape hop is gone and the adaptive network only offers minimal moves.
The benchmarks quantify how many pairs a single link fault severs,
versus zero for NAFTA.
"""

from __future__ import annotations

from ..sim.flit import Header
from ..sim.topology import EAST, NORTH, SOUTH, WEST, Mesh2D, Torus2D, Topology
from .base import RouteDecision, RoutingAlgorithm, RoutingError

ESCAPE_VC = 0
ADAPTIVE_VC = 1


class DuatoMeshRouting(RoutingAlgorithm):
    name = "duato"
    n_vcs = 2
    fault_tolerant = False   # the paper's point: dynamic schemes are not

    def check_topology(self, topology: Topology) -> None:
        if not isinstance(topology, Mesh2D) or isinstance(topology, Torus2D):
            raise RoutingError("the Duato-style scheme runs on 2-D meshes")

    @staticmethod
    def _xy_port(topo: Mesh2D, node: int, dst: int) -> int | None:
        x, y = topo.coords(node)
        dx, dy = topo.coords(dst)
        if dx > x:
            return EAST
        if dx < x:
            return WEST
        if dy > y:
            return NORTH
        if dy < y:
            return SOUTH
        return None

    def route(self, router, header: Header, in_port: int,
              in_vc: int) -> RouteDecision:
        topo: Mesh2D = router.topology
        if router.node == header.dst:
            return RouteDecision.delivery()
        escape_only = bool(header.fields.get("on_escape")) or \
            in_vc == ESCAPE_VC and in_port >= 0
        xy = self._xy_port(topo, router.node, header.dst)
        candidates: list[tuple[int, int]] = []
        if not escape_only:
            minimal = topo.minimal_ports(router.node, header.dst)
            alive_min = [p for p in minimal if router.port_alive(p)]
            candidates.extend(
                (p, ADAPTIVE_VC)
                for p in sorted(alive_min,
                                key=lambda p: (router.output_load(p), p)))
        if xy is not None and router.port_alive(xy):
            candidates.append((xy, ESCAPE_VC))
        if not candidates:
            # no alive minimal output and no escape hop: a single link
            # fault severed this pair — the paper's vulnerability
            return RouteDecision.unroutable()
        return RouteDecision(candidates=candidates)

    def on_depart(self, router, header: Header, out_port: int,
                  out_vc: int) -> None:
        super().on_depart(router, header, out_port, out_vc)
        if out_vc == ESCAPE_VC:
            header.fields["on_escape"] = True

"""Build-time clean-route decision tables for the batched engine.

While the *known* fault set is empty, the native mesh algorithms'
decisions are translation-invariant: NAFTA collapses onto NARA (the
u-turn filter never binds, clear runs span whole columns, detours and
virtual-network switches are unreachable) and both reduce to a pure
function of (sign dx, sign dy, the ``vn`` field, the optional ``term``
commitment).  That is a 3 x 3 x 3 x 2 = 54-entry dense table, which
this module builds once per network construction by *probing* the live
algorithm — running ``route()`` at a handful of nodes, destination
magnitudes, arrival ports and VCs per key and keeping an entry only
when every probe returns the identical decision.  The batched engine
hands the table to its C kernels fully populated, so clean-network
routing never enters Python, even on the very first sighting of a
(dest, state) key — eliminating the cache-fill warmup cliff that
dominated short runs and large meshes.

Why probing instead of the compiler's ``decide_batch``: the
rule-driven algorithms' premises include per-cycle output-queue
congestion, so their (single-candidate, load-chosen) decisions are not
statically tabulable — and the hand-written native algorithms don't go
through the rule compiler at all.  ``decide_batch``'s dense gather
stays what it is (a vectorized replay of congestion-independent
compiled tables, exercised by the fastpath tests); the clean table is
the analogous artifact for the native engine, proven against the
algorithm itself at build time.

Tables persist as JSON under the batched kernel's cache directory
keyed by the compiler's code-version token (any source change
invalidates them), so repeat builds — sweep workers, CI runs with a
seeded cache — skip the probe pass entirely.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, field

from ..sim.flit import Header
from ..sim.topology import Mesh2D, Torus2D
from .base import REFRESH_REROUTE, RouteDecision

#: table geometry — must match the C kernel's CT_KEYS / CT_CANDS
CT_KEYS = 54
CT_CANDS = 8
#: mirror encoding of "field absent" (see _batched_kernel.FIELD_ABSENT)
ABSENT = -1000000

_LOCAL = -1          # pseudo in_port: injection at the local port

#: bump to invalidate persisted tables on format changes
_FORMAT = 1


def key_index(sdx: int, sdy: int, vncode: int, term: int) -> int:
    """Dense index of a (sign dx, sign dy, vn-state, term) key.

    ``vncode``: 0 = vn absent, 1 = vn 0, 2 = vn 1 — identical to the C
    kernel's ``ct_lookup``.
    """
    return (((sdx + 1) * 3 + sdy + 1) * 3 + vncode) * 2 + term


@dataclass
class CleanTable:
    """Dense 54-entry decision table, C-layout-ready plain lists."""

    valid: list[int] = field(default_factory=lambda: [0] * CT_KEYS)
    deliver: list[int] = field(default_factory=lambda: [0] * CT_KEYS)
    hint: list[int] = field(default_factory=lambda: [0] * CT_KEYS)
    steps: list[int] = field(default_factory=lambda: [0] * CT_KEYS)
    ncand: list[int] = field(default_factory=lambda: [0] * CT_KEYS)
    #: after-value of the vn field (ABSENT = route() left it alone)
    vn_after: list[int] = field(default_factory=lambda: [ABSENT] * CT_KEYS)
    #: candidate ports / vcs, CT_KEYS x CT_CANDS row-major
    cp: list[int] = field(default_factory=lambda: [0] * CT_KEYS * CT_CANDS)
    cv: list[int] = field(default_factory=lambda: [0] * CT_KEYS * CT_CANDS)

    def n_valid(self) -> int:
        return sum(self.valid)

    def to_dict(self) -> dict:
        return {
            "format": _FORMAT,
            "keys": CT_KEYS,
            "cands": CT_CANDS,
            "valid": self.valid,
            "deliver": self.deliver,
            "hint": self.hint,
            "steps": self.steps,
            "ncand": self.ncand,
            "vn_after": self.vn_after,
            "cp": self.cp,
            "cv": self.cv,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "CleanTable":
        if d.get("format") != _FORMAT or d.get("keys") != CT_KEYS \
                or d.get("cands") != CT_CANDS:
            raise ValueError("clean-table format mismatch")
        t = cls()
        for name in ("valid", "deliver", "hint", "steps", "ncand",
                     "vn_after", "cp", "cv"):
            vals = [int(v) for v in d[name]]
            if len(vals) != len(getattr(t, name)):
                raise ValueError(f"clean-table field {name}: bad length")
            setattr(t, name, vals)
        return t


class _ProbeRouter:
    """The slice of the router query surface ``route()`` touches on a
    clean, empty network: geometry plus all-zero output loads."""

    __slots__ = ("node", "topology", "ports", "n_vcs")

    def __init__(self, topology, node: int, n_vcs: int):
        self.node = node
        self.topology = topology
        self.ports = dict(topology.ports(node))
        self.n_vcs = n_vcs

    def output_load(self, pid: int) -> int:
        return 0

    def occupancy(self) -> int:
        return 0

    def port_alive(self, pid: int) -> bool:
        return pid == _LOCAL or pid in self.ports

    def alive_ports(self) -> list[int]:
        return list(self.ports)

    def neighbor(self, pid: int):
        p = self.ports.get(pid)
        return p.neighbor if p else None


def eligible(algorithm, topology) -> bool:
    """Whether (algorithm, topology) can carry a clean table at all."""
    nf = algorithm.native_fields
    return (bool(getattr(algorithm, "native_clean_table", False))
            and nf is not None and "vn" in nf
            and isinstance(topology, Mesh2D)
            and not isinstance(topology, Torus2D))


def _probe_points(topo: Mesh2D) -> list[int]:
    """A few well-spread probe nodes (interior when the mesh has one)."""
    w, h = topo.width, topo.height
    pts = {(min(1, w - 1), min(1, h - 1)),
           (w // 2, h // 2),
           (max(w - 2, 0), max(h - 2, 0))}
    return sorted(topo.node_at(x, y) for x, y in pts)


def _arrival_ports(router: _ProbeRouter, sdx: int, sdy: int) -> list[int]:
    """In-ports a head can reach this (sign dx, sign dy) state through
    under minimal clean-network routing: injection, plus each port
    whose opposite direction still points toward (or along) the
    destination — the side the worm last moved away from."""
    from ..sim.topology import EAST, NORTH, SOUTH, WEST
    out = [_LOCAL]
    deliver = sdx == 0 and sdy == 0
    for pid, cond in ((WEST, sdx >= 0), (EAST, sdx <= 0),
                      (SOUTH, sdy >= 0), (NORTH, sdy <= 0)):
        if (deliver or cond) and pid in router.ports:
            out.append(pid)
    return out


def _probe_once(algorithm, router: _ProbeRouter, dst: int,
                base_fields: dict, in_port: int, in_vc: int):
    """One route() probe; returns the comparable outcome tuple or None
    when the decision leaves the table's domain."""
    header = Header(msg_id=0, src=router.node, dst=dst, length=1,
                    created=0, fields=dict(base_fields))
    dec: RouteDecision = algorithm.route(router, header, in_port, in_vc)
    cands = list(dec.candidates)
    if dec.stuck or dec.refresh_hint == REFRESH_REROUTE \
            or len(cands) > CT_CANDS:
        return None
    # the only replayable side effect is writing vn where it was absent
    after = dict(header.fields)
    before = dict(base_fields)
    vn_after = ABSENT
    if after.get("vn") != before.get("vn"):
        if "vn" in before:
            return None
        vn_after = after.pop("vn")
        if not isinstance(vn_after, int) or not 0 <= vn_after < 8:
            return None
    else:
        after.pop("vn", None)
        before.pop("vn", None)
    if after != before:
        return None
    return (1 if dec.deliver else 0, int(dec.steps),
            int(dec.refresh_hint), tuple(cands), vn_after)


def build_clean_table(algorithm, topology) -> CleanTable | None:
    """Probe-build the dense clean table for this (algorithm,
    topology); entries any probe disqualifies stay invalid (the engine
    falls through to its normal decision path for those keys)."""
    if not eligible(algorithm, topology):
        return None
    topo: Mesh2D = topology
    nf = algorithm.native_fields
    has_term = "term" in nf
    n_vcs = algorithm.n_vcs
    routers = [_ProbeRouter(topo, n, n_vcs) for n in _probe_points(topo)]
    table = CleanTable()
    for sdx in (-1, 0, 1):
        for sdy in (-1, 0, 1):
            for vncode in (0, 1, 2):
                for term in (0, 1):
                    if term and (vncode == 0 or not has_term):
                        continue        # term commits an assigned vn
                    idx = key_index(sdx, sdy, vncode, term)
                    entry = _probe_key(algorithm, topo, routers,
                                       sdx, sdy, vncode, term, n_vcs)
                    if entry is None:
                        continue
                    deliver, steps, hint, cands, vn_after = entry
                    table.valid[idx] = 1
                    table.deliver[idx] = deliver
                    table.steps[idx] = steps
                    table.hint[idx] = hint
                    table.ncand[idx] = len(cands)
                    table.vn_after[idx] = vn_after
                    base = idx * CT_CANDS
                    for i, (p, v) in enumerate(cands):
                        table.cp[base + i] = int(p)
                        table.cv[base + i] = int(v)
    return table


def _probe_key(algorithm, topo: Mesh2D, routers, sdx: int, sdy: int,
               vncode: int, term: int, n_vcs: int):
    """All probes for one key; the consistent outcome, else None."""
    base_fields: dict = {}
    if vncode:
        base_fields["vn"] = vncode - 1
    if term:
        base_fields["term"] = True
    outcome = None
    probes = 0
    for router in routers:
        x, y = topo.coords(router.node)
        xs = [x + sdx * m for m in ((1, 2) if sdx else (0,))]
        ys = [y + sdy * m for m in ((1, 2) if sdy else (0,))]
        for dx in xs:
            if not 0 <= dx < topo.width:
                continue
            for dy in ys:
                if not 0 <= dy < topo.height:
                    continue
                dst = topo.node_at(dx, dy)
                for in_port in _arrival_ports(router, sdx, sdy):
                    vcs = (0, n_vcs - 1) if in_port == _LOCAL else (0,)
                    for in_vc in vcs:
                        got = _probe_once(algorithm, router, dst,
                                          base_fields, in_port, in_vc)
                        if got is None:
                            return None
                        if outcome is None:
                            outcome = got
                        elif got != outcome:
                            return None     # not sign-invariant
                        probes += 1
                # determinism: the same probe twice must agree
                rerun = _probe_once(algorithm, router, dst, base_fields,
                                    _LOCAL, 0)
                if rerun != outcome:
                    return None
    return outcome if probes else None


# -- persistence -------------------------------------------------------


def _table_path(algorithm, topology: Mesh2D) -> str:
    # lazy imports: pool pulls in the experiments package and the
    # kernel module is only needed for its cache-directory convention
    from ..experiments.pool import code_version_token
    from ..sim._batched_kernel import _cache_dir
    name = (f"ct-{code_version_token()}-{algorithm.name}"
            f"-{topology.width}x{topology.height}.json")
    return os.path.join(_cache_dir(), "tables", name)


def load_or_build(algorithm, topology) -> CleanTable | None:
    """The clean table for this (algorithm, topology), from the
    persisted cache when the code-version token matches, probe-built
    (and persisted) otherwise."""
    if not eligible(algorithm, topology):
        return None
    path = _table_path(algorithm, topology)
    try:
        with open(path, encoding="utf-8") as f:
            return CleanTable.from_dict(json.load(f))
    except (OSError, ValueError, KeyError, TypeError):
        pass
    table = build_clean_table(algorithm, topology)
    if table is None:
        return None
    try:
        os.makedirs(os.path.dirname(path), exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path),
                                   suffix=".tmp")
        with os.fdopen(fd, "w", encoding="utf-8") as f:
            json.dump(table.to_dict(), f, sort_keys=True)
        os.replace(tmp, path)           # atomic for concurrent builders
    except OSError:  # pragma: no cover - cache dir not writable
        pass
    return table

"""Rule-driven routing: the simulator's routers controlled by actual
compiled rule programs.

This closes the loop on the paper's Figure 3: each router's control
unit is a :class:`~repro.core.engine.RuleEngine` executing the compiled
``nafta.rules`` program.  The routing decision chains the same rule
bases the paper's Table 1 describes —

1. ``incoming_message``  (one interpretation step, fault-free fast path)
2. ``in_message_ft``     (second step: fault-restricted decision)
3. ``test_exception``    (third step: detour handling)

— so the 1..3 interpretation steps per decision arise from real rule
interpretation, not from a hand-written counter.  Distributed fault
state (deactivation, usable sets, clear-run counters) is maintained in
the engines' registers by firing the state rule bases
(``fault_occured``, ``calculate_new_node_state``,
``consider_neighbor_state`` and the internally-emitted
``update_dir_table``) in neighbour-exchange waves until the registers
settle — the paper's wave-like propagation executed by the rule
machine itself.

This path is an order of magnitude slower than the native
:class:`~repro.routing.nafta.NaftaRouting` (every decision is a rule
interpretation in Python); it exists for architectural fidelity and is
differentially tested against the native algorithm on small meshes.
"""

from __future__ import annotations

from ..core.engine import RuleEngine
from ..sim.flit import Header
from ..sim.topology import EAST, WEST, Mesh2D, Torus2D, Topology
from .base import RouteDecision, RoutingAlgorithm, RoutingError
from .nara import VN_TERMINAL, assign_virtual_network
from .rulesets.loader import RULESETS, compile_ruleset

DELIVER = 4


def _attach_tracers(network, engines: list[RuleEngine]) -> None:
    """Tag each node's rule engine with the network's tracer so
    rule-base invocations show up in the trace (no-op when tracing is
    off — the engines keep the shared null tracer)."""
    tracer = getattr(network, "tracer", None)
    if tracer is not None and tracer.enabled:
        for node, eng in enumerate(engines):
            eng.attach_tracer(tracer, node)


class RuleDrivenNafta(RoutingAlgorithm):
    name = "nafta_rules"
    n_vcs = 2
    fault_tolerant = True

    def __init__(self, qmax: int = 63, engine_mode: str = "table",
                 fastpath: bool = True):
        self.qmax = qmax
        self.engine_mode = engine_mode
        self.fastpath = fastpath
        self.engines: list[RuleEngine] = []
        self.compiled = None
        self._rmax = 15

    # -- lifecycle ------------------------------------------------------

    def check_topology(self, topology: Topology) -> None:
        if not isinstance(topology, Mesh2D) or isinstance(topology, Torus2D):
            raise RoutingError("the NAFTA ruleset runs on 2-D meshes")

    def reset(self, network) -> None:
        topo: Mesh2D = network.topology
        self._rmax = max(topo.width, topo.height) - 1
        params = {"xsize": topo.width, "ysize": topo.height,
                  "qmax": self.qmax, "rmax": self._rmax}
        self.compiled = compile_ruleset("nafta", params)
        spec = RULESETS["nafta"]
        self.engines = [RuleEngine(self.compiled, functions=spec.functions,
                                   mode=self.engine_mode,
                                   fastpath=self.fastpath)
                        for _ in topo.nodes()]
        self.network = network
        _attach_tracers(network, self.engines)
        self.on_fault_update(network)

    # -- distributed state via the rule machine ----------------------------

    def _engine_blocked(self, node: int) -> bool:
        return self.engines[node].registers.read("mystate") != "safe"

    def _neighbor_view(self, network, node: int, dir_: int):
        """(state symbol, run counter) the neighbour in ``dir_`` reports,
        as the information channel would deliver it.  A mesh border is
        NOT a blocked neighbour (that would falsely deactivate corners);
        it is a missing link — linkok=false zeroes the run counter."""
        topo = network.topology
        port = topo.port(node, dir_)
        if port is None:
            return "ok", 0        # border: no neighbour, link dead below
        if not network.known_faults.link_ok(node, port.neighbor):
            return "blocked", 0
        if self._engine_blocked(port.neighbor):
            return "blocked", 0
        run = self.engines[port.neighbor].registers.read("runc", (dir_,))
        return "ok", int(run)

    def on_fault_update(self, network, nodes=None) -> None:
        """Diagnosis phase: drive the state rule bases to fixpoint."""
        topo: Mesh2D = network.topology
        # 1. local failures enter through fault_occured
        for node in topo.nodes():
            eng = self.engines[node]
            if not network.known_faults.node_ok(node):
                eng.set_inputs({"fault_kind": 0})
                eng.post("fault_occured", 0)
                eng.run()
                eng.drain_external()
            else:
                for dir_ in range(4):
                    port = topo.port(node, dir_)
                    if port is not None and \
                            not network.known_faults.link_ok(node, port.neighbor):
                        eng.set_inputs({"fault_kind": 1})
                        eng.post("fault_occured", dir_)
                        eng.run()
                        eng.drain_external()
        # 2. neighbour-exchange waves until every register settles
        for _ in range(topo.width * topo.height + 2):
            changed = False
            for node in topo.nodes():
                if not network.known_faults.node_ok(node):
                    continue
                eng = self.engines[node]
                before = eng.registers.snapshot()
                nnew = {}
                nrun = {}
                linkok = {}
                for dir_ in range(4):
                    state, run = self._neighbor_view(network, node, dir_)
                    nnew[(dir_,)] = state
                    nrun[(dir_,)] = run
                    port = topo.port(node, dir_)
                    linkok[(dir_,)] = (
                        "true" if port is not None
                        and network.known_faults.link_ok(node, port.neighbor)
                        else "false")
                eng.set_inputs({"nnew": nnew, "nrun": nrun,
                                "linkok": linkok, "fault_kind": 1})
                for dir_ in range(4):
                    eng.post("calculate_new_node_state", dir_)
                    eng.post("consider_neighbor_state", dir_)
                eng.run()
                eng.drain_external()
                if eng.registers.snapshot() != before:
                    changed = True
            if not changed:
                break

    def accepts(self, src: int, dst: int) -> bool:
        return not (self._engine_blocked(src) or self._engine_blocked(dst))

    # -- the decision -----------------------------------------------------------

    def _decision_inputs(self, router, header: Header, in_port: int,
                         vn: int) -> dict:
        topo: Mesh2D = router.topology
        eng = self.engines[router.node]
        x, y = topo.coords(router.node)
        dx, dy = topo.coords(header.dst)
        term = VN_TERMINAL[vn]
        # The mask carries *fault usability*, not momentary congestion:
        # a busy-but-healthy output makes the worm wait at the router
        # (the decision is re-evaluated each cycle with fresh loads),
        # whereas a fault-unusable output triggers the ft/exception rule
        # bases.  Misrouting on congestion would be wrong.
        mask = set()
        for d in range(4):
            if d == in_port:
                continue  # never u-turn (wired out at the interface)
            port = topo.port(router.node, d)
            if port is None or not router.port_alive(d):
                continue
            if self._engine_blocked(port.neighbor):
                continue
            mask.add(d)
        freemask = {(vc,): frozenset(mask) for vc in range(self.n_vcs)}
        oq = {(d,): min(self.qmax, router.output_load(d) if d in router.ports
                        else self.qmax)
              for d in range(4)}
        hops = abs(dy - y)
        runok = (eng.registers.read("runc", (term,)) >= hops)
        sdir = header.fields.get("sdir")
        return {
            "xpos": x, "ypos": y, "xdes": dx, "ydes": dy, "vnin": vn,
            "termin": "true" if header.fields.get("term") else "false",
            "sdirin": {None: 0, EAST: 1, WEST: 2}.get(sdir, 0),
            "fault_present": ("true" if self.network.known_faults.n_faults()
                              else "false"),
            "freemask": freemask, "oq": oq,
            "samecol": "true" if x == dx else "false",
            "runok": "true" if runok else "false",
            "mlen": min(self.qmax, header.length),
            "info_kind": "load_info", "info_val": 0, "fault_kind": 0,
        }

    def route(self, router, header: Header, in_port: int,
              in_vc: int) -> RouteDecision:
        if router.node == header.dst:
            return RouteDecision.delivery()
        eng = self.engines[router.node]
        vn = header.fields.get("vn")
        if vn is None:
            vn = assign_virtual_network(router.topology, router.node,
                                        header.dst)
            header.fields["vn"] = vn
        indir = in_port if in_port >= 0 else 4
        # _decision_inputs builds canonical (tuple-keyed) dicts, so the
        # per-decision normalization scan can be skipped
        eng.set_inputs(self._decision_inputs(router, header, in_port, vn),
                       trusted=True)

        # step 1: the NARA fast path
        res = eng.call("incoming_message", indir, vn)
        steps = 1
        if not res.has_return:
            # step 2: fault-tolerant decision
            res = eng.call("in_message_ft", indir)
            steps = 2
        if not res.has_return:
            # step 3: the exception path
            res = eng.call("test_exception", indir)
            steps = 3
            if any(e.event == "declare_stuck" for e in res.emissions):
                eng.drain_external()
                return RouteDecision.unroutable(steps=steps)
            if res.has_return:
                out = int(res.returned)
                if out in (EAST, WEST):
                    header.fields["sdir"] = out
                header.mark_misrouted()
        eng.drain_external()
        if not res.has_return:
            # blocked, not stuck: wait and retry next cycle
            return RouteDecision(candidates=[], steps=steps)
        out = res.returned
        if out == DELIVER:
            return RouteDecision.delivery(steps=steps)
        return RouteDecision(candidates=[(int(out), vn)], steps=steps)

    def on_depart(self, router, header: Header, out_port: int,
                  out_vc: int) -> None:
        super().on_depart(router, header, out_port, out_vc)
        vn = header.fields.get("vn")
        if vn is not None and out_port == VN_TERMINAL[vn]:
            header.fields["term"] = True

    def decision_steps_range(self) -> tuple[int, int]:
        return (1, 3)


class RuleDrivenRouteC(RoutingAlgorithm):
    """ROUTE_C executed by the rule machine: the two interpretation
    steps per decision are real invocations of the compiled
    ``decide_dir`` and ``decide_vc`` rule bases, and the safety states
    live in each node engine's registers, fed by ``update_state``
    events exchanged between neighbours until the lattice settles.

    The adaptivity rule base runs concurrently with decide_vc in the
    paper's model (its criterion generation "is done separately"), so a
    decision still counts two steps.
    """

    name = "route_c_rules"
    n_vcs = 5
    fault_tolerant = True

    def __init__(self, engine_mode: str = "table", fastpath: bool = True):
        self.engine_mode = engine_mode
        self.fastpath = fastpath
        self.engines: list[RuleEngine] = []
        self.compiled = None
        self._d = 0

    def check_topology(self, topology: Topology) -> None:
        from ..sim.topology import Hypercube
        if not isinstance(topology, Hypercube):
            raise RoutingError("the ROUTE_C ruleset runs on hypercubes")

    def reset(self, network) -> None:
        topo = network.topology
        self._d = topo.dimension
        self.compiled = compile_ruleset("route_c", {"d": self._d, "a": 2})
        spec = RULESETS["route_c"]
        self.engines = [RuleEngine(self.compiled, functions=spec.functions,
                                   mode=self.engine_mode,
                                   fastpath=self.fastpath)
                        for _ in topo.nodes()]
        self.network = network
        _attach_tracers(network, self.engines)
        self.on_fault_update(network)

    # -- distributed safety state through update_state events ---------------

    def _reported_state(self, network, node: int) -> str:
        """The state a node broadcasts to its neighbours."""
        if not network.known_faults.node_ok(node):
            return "faulty"
        topo = network.topology
        if any(not network.known_faults.link_ok(node, p.neighbor)
               for p in topo.ports(node).values()
               if network.known_faults.node_ok(p.neighbor)):
            return "lfault"
        return self.engines[node].registers.read("state")

    def on_fault_update(self, network, nodes=None) -> None:
        topo = network.topology
        for eng in self.engines:
            eng.reset_state()
        for _ in range(topo.n_nodes + 2):
            changed = False
            for node in topo.nodes():
                if not network.known_faults.node_ok(node):
                    continue
                eng = self.engines[node]
                before = eng.registers.snapshot()
                new_state = {}
                for dim, port in topo.ports(node).items():
                    nb = port.neighbor
                    if not network.known_faults.link_ok(node, nb):
                        new_state[(dim,)] = "lfault"
                    else:
                        new_state[(dim,)] = self._reported_state(network, nb)
                eng.set_inputs({"new_state": new_state, "qload": {},
                                "up_set": frozenset(),
                                "down_set": frozenset(),
                                "usable": frozenset(),
                                "safe_mask": frozenset(),
                                "at_dest": "false"})
                for dim in range(self._d):
                    eng.post("update_state", dim)
                eng.run()
                eng.drain_external()
                if eng.registers.snapshot() != before:
                    changed = True
            if not changed:
                break

    def node_state(self, node: int) -> str:
        return self._reported_state(self.network, node)

    def accepts(self, src: int, dst: int) -> bool:
        return (self.network.known_faults.node_ok(src)
                and self.network.known_faults.node_ok(dst))

    # -- the decision -----------------------------------------------------------

    def _masks(self, router, header: Header):
        topo = router.topology
        node = router.node
        diff = node ^ header.dst
        up = frozenset(i for i in range(self._d)
                       if diff >> i & 1 and not node >> i & 1)
        down = frozenset(i for i in range(self._d)
                         if diff >> i & 1 and node >> i & 1)
        usable = set()
        safe = set()
        for dim, port in topo.ports(node).items():
            nb = port.neighbor
            if not self.network.known_faults.link_ok(node, nb):
                continue
            st = self.node_state(nb)
            if st == "faulty":
                continue
            if st == "sunsafe" and nb != header.dst:
                continue
            usable.add(dim)
            if st == "safe":
                safe.add(dim)
        return up, down, frozenset(usable), frozenset(safe)

    def route(self, router, header: Header, in_port: int,
              in_vc: int) -> RouteDecision:
        if router.node == header.dst:
            return RouteDecision.delivery(steps=2)
        eng = self.engines[router.node]
        up, down, usable, safe = self._masks(router, header)
        # never u-turn: wired out at the interface, like the native
        # algorithm's in_port exclusion
        if in_port >= 0:
            usable = usable - {in_port}
        qload = {(d,): min(2 * self._d - 1, router.output_load(d)
                           if d in router.ports else 2 * self._d - 1)
                 for d in range(self._d)}
        eng.set_inputs({"up_set": up, "down_set": down, "usable": usable,
                        "safe_mask": safe, "at_dest": "false",
                        "qload": qload, "new_state": {}}, trusted=True)

        # step 1: decide_dir — the admissible output set
        res = eng.call("decide_dir")
        eng.drain_external()
        if not res.has_return or not res.returned:
            return RouteDecision.unroutable(steps=2)
        cands = res.returned
        assert isinstance(cands, frozenset)
        minimal = up if up else down
        detour = not (set(cands) & set(minimal))

        # (concurrent) adaptivity: order the admissible set
        best = eng.decide("adaptivity", cands, 0)
        eng.drain_external()
        ordered = sorted(cands, key=lambda d: (d != best, qload[(d,)], d))

        # step 2: decide_vc — channel class for the hops-so-far scheme
        cls = int(header.fields.get("vc_class", 0))
        res_vc = eng.call("decide_vc", cls, "true" if detour else "false", best)
        eng.drain_external()
        if not res_vc.has_return:
            return RouteDecision.unroutable(steps=2)
        out_vc = int(res_vc.returned)
        if detour:
            header.mark_misrouted()
            # the "_" prefix marks this as per-decision scratch: it is
            # recomputed by every route() call and consumed by the same
            # decision's on_depart, so backup-aware dispatch
            # (routing/backup.py) may discard it when substituting a
            # precompiled entry — only ``vc_class`` is committed state
            header.fields["_detour_next"] = True
        return RouteDecision(candidates=[(d, out_vc) for d in ordered],
                             steps=2)

    def on_depart(self, router, header: Header, out_port: int,
                  out_vc: int) -> None:
        super().on_depart(router, header, out_port, out_vc)
        if header.fields.pop("_detour_next", False):
            header.fields["vc_class"] = int(
                header.fields.get("vc_class", 0)) + 1

    def decision_steps_range(self) -> tuple[int, int]:
        return (2, 2)

"""Up*/down* routing (Autonet-style): adaptive fault-tolerant routing
for arbitrary topologies.

The paper situates its router in the cluster-network world of Myrinet
and friends (Section 1); up*/down* is that world's workhorse for
irregular (including fault-damaged) topologies and makes a strong
baseline between the crippled spanning tree (tree links only) and the
topology-specific NAFTA/ROUTE_C:

* build a BFS order from a root: every link gets an "up" direction
  (toward the smaller (depth, id) key);
* a legal path is up* then down*: zero or more up hops followed by
  zero or more down hops — one-way phase change, keys strictly
  decreasing in the up phase and increasing in the down phase, so the
  channel dependency graph is acyclic with a single virtual channel;
* unlike tree routing, *every* healthy link is usable, and multiple
  up/down candidates give real adaptivity;
* faults: recompute the order over the healthy subgraph (diagnosis
  phase); any connected pair stays routable (up to the root's
  component), i.e. Condition 3 holds whenever the network is connected.

Purposiveness needs to know which hops still lead to the destination;
we precompute per-node reachability sets at (re)configuration time —
the centralized-recomputation cost that distinguishes this class of
algorithms from NAFTA's constant-memory wave propagation.
"""

from __future__ import annotations

from ..sim.flit import Header
from ..sim.topology import Topology
from .base import RouteDecision, RoutingAlgorithm

UP, DOWN = 0, 1


class UpDownRouting(RoutingAlgorithm):
    name = "updown"
    n_vcs = 1
    fault_tolerant = True

    def __init__(self, root: int = 0):
        self.root = root
        self.key: dict[int, tuple[int, int]] = {}
        self.down_reach: dict[int, frozenset] = {}
        self.updown_reach: dict[int, frozenset] = {}

    def check_topology(self, topology: Topology) -> None:
        pass  # any topology

    def reset(self, network) -> None:
        self.network = network
        self._reconfigure(network)

    def on_fault_update(self, network, nodes=None) -> None:
        self._reconfigure(network)

    # -- configuration: order + reachability -------------------------------

    def _reconfigure(self, network) -> None:
        topo = network.topology
        faults = network.known_faults
        root = self.root
        if not faults.node_ok(root):
            alive = [n for n in topo.nodes() if faults.node_ok(n)]
            if not alive:
                self.key = {}
                return
            root = alive[0]
        # BFS depths over the healthy subgraph
        from collections import deque
        depth = {root: 0}
        q = deque([root])
        while q:
            cur = q.popleft()
            for p in topo.ports(cur).values():
                nb = p.neighbor
                if nb not in depth and faults.link_ok(cur, nb):
                    depth[nb] = depth[cur] + 1
                    q.append(nb)
        self.key = {n: (d, n) for n, d in depth.items()}

        # down_reach[u]: nodes reachable from u via down* (keys ascend)
        order = sorted(self.key, key=self.key.get, reverse=True)
        down_reach: dict[int, set] = {}
        for u in order:  # descending key: down-neighbours done first
            reach = {u}
            for p in topo.ports(u).values():
                v = p.neighbor
                if v in self.key and faults.link_ok(u, v) \
                        and self.key[v] > self.key[u]:
                    reach |= down_reach[v]
            down_reach[u] = reach
        self.down_reach = {u: frozenset(r) for u, r in down_reach.items()}

        # updown_reach[u]: nodes reachable via up* then down*
        updown: dict[int, set] = {}
        for u in sorted(self.key, key=self.key.get):  # ascending key
            reach = set(down_reach[u])
            for p in topo.ports(u).values():
                v = p.neighbor
                if v in self.key and faults.link_ok(u, v) \
                        and self.key[v] < self.key[u]:
                    reach |= updown[v]
            updown[u] = reach
        self.updown_reach = {u: frozenset(r) for u, r in updown.items()}

    def accepts(self, src: int, dst: int) -> bool:
        return (src in self.key and dst in self.key
                and dst in self.updown_reach[src])

    # -- the decision -------------------------------------------------------

    def route(self, router, header: Header, in_port: int,
              in_vc: int) -> RouteDecision:
        node = router.node
        if node == header.dst:
            return RouteDecision.delivery()
        if node not in self.key or header.dst not in self.key:
            return RouteDecision.unroutable()
        phase = header.fields.get("ud_phase", UP)
        dst = header.dst
        my_key = self.key[node]
        candidates: list[tuple[int, str]] = []
        for pid, p in router.topology.ports(node).items():
            v = p.neighbor
            if v not in self.key or not router.port_alive(pid):
                continue
            goes_up = self.key[v] < my_key
            if goes_up:
                if phase == DOWN:
                    continue  # never up after down
                if dst in self.updown_reach[v]:
                    candidates.append((pid, "up"))
            else:
                if dst in self.down_reach[v]:
                    candidates.append((pid, "down"))
        if not candidates:
            return RouteDecision.unroutable()
        # adaptivity: prefer down moves (they commit less), then load
        ordered = sorted(
            candidates,
            key=lambda c: (c[1] == "up", router.output_load(c[0]), c[0]))
        header.fields["_ud_moves"] = {pid: kind for pid, kind in ordered}
        return RouteDecision(candidates=[(pid, 0) for pid, _ in ordered])

    def on_depart(self, router, header: Header, out_port: int,
                  out_vc: int) -> None:
        super().on_depart(router, header, out_port, out_vc)
        moves = header.fields.pop("_ud_moves", {})
        if moves.get(out_port) == "down":
            header.fields["ud_phase"] = DOWN

    def decision_steps_range(self) -> tuple[int, int]:
        return (1, 1)

"""ROUTE_C: fault-tolerant routing on hypercubes ([ChW96] via this
paper; reconstruction documented in DESIGN.md Section 3).

Node-state machine (paper Figure 4 / Section 2.2): each node is
``safe``, ``ounsafe`` (ordinarily unsafe), ``sunsafe`` (strongly
unsafe), ``lfault`` (incident link fault) or ``faulty``.  A node with
two or more not-safe neighbours becomes unsafe — strongly so when two
or more of them are faulty or link-faulted.  States are exchanged
between neighbours and settle quickly because the update is monotone in
the state lattice (property-tested).  The network is "totally unsafe"
when no safe node remains, which requires more than n-1 node faults
(tested on small cubes).

Routing ([Kon90]-style two-phase + hops-so-far detours, 5 VCs total):

* VC0 — minimal two-phase: first correct dimensions 0 -> 1 (ascending
  coordinate), then dimensions 1 -> 0, adaptively within each phase;
  the phase order makes VC0's channel dependency graph acyclic.
* VC1..VC4 — detour classes: when every minimal link of the current
  phase is unusable, the message takes a non-minimal hop and moves to
  the next-higher VC class; minimal hops keep the class.  Classes only
  ever increase, so the full CDG stays acyclic; a message that would
  need a fifth detour is declared unroutable (with <= 3 faults this
  does not happen in practice — the paper's hypercube argument that
  every 2-hop pair has two alternative paths).

Unsafe-node avoidance: candidates through safe neighbours are preferred,
``ounsafe`` neighbours are used when no safe one exists, ``sunsafe``
only when the message is destined there.

Every decision costs two interpretation steps (``decide_dir`` then
``decide_vc``), the number the paper reports; the non-fault-tolerant
variant (:class:`StrippedRouteC`) skips the fault logic and needs one.
"""

from __future__ import annotations

from ..sim.flit import Header
from ..sim.topology import Hypercube, Topology
from .base import RouteDecision, RoutingAlgorithm, RoutingError

SAFE, OUNSAFE, SUNSAFE, LFAULT, FAULTY = (
    "safe", "ounsafe", "sunsafe", "lfault", "faulty")

#: order of the finite state lattice the paper mentions ("the way in
#: which error states are combined forms a partial order")
SEVERITY = {SAFE: 0, OUNSAFE: 1, SUNSAFE: 2, LFAULT: 3, FAULTY: 4}

N_DETOUR_CLASSES = 4  # VC1..VC4 (the paper's "four additional VCs")


class CubeStateMap:
    """Settled distributed safety state of all hypercube nodes."""

    def __init__(self, topology: Hypercube, faults):
        self.topology = topology
        self.faults = faults
        self.states: list[str] = [SAFE] * topology.n_nodes
        self.propagation_rounds = 0
        self.recompute()

    def state(self, node: int) -> str:
        return self.states[node]

    def recompute(self) -> None:
        topo = self.topology
        st = self.states
        for n in topo.nodes():
            if not self.faults.node_ok(n):
                st[n] = FAULTY
            elif any(not self.faults.link_ok(n, p.neighbor)
                     for p in topo.ports(n).values()
                     if self.faults.node_ok(p.neighbor)):
                st[n] = LFAULT
            else:
                st[n] = SAFE
        rounds = 0
        changed = True
        while changed:
            changed = False
            rounds += 1
            for n in topo.nodes():
                if st[n] in (FAULTY, LFAULT):
                    continue
                n_unsafe = 0
                n_hard = 0
                for p in topo.ports(n).values():
                    nb_state = st[p.neighbor]
                    if not self.faults.link_ok(n, p.neighbor):
                        n_unsafe += 1
                        n_hard += 1
                        continue
                    if nb_state != SAFE:
                        n_unsafe += 1
                    if nb_state in (FAULTY, LFAULT):
                        n_hard += 1
                new = st[n]
                if n_hard >= 2:
                    new = SUNSAFE
                elif n_unsafe >= 2:
                    new = OUNSAFE if st[n] == SAFE else st[n]
                if SEVERITY[new] > SEVERITY[st[n]]:
                    st[n] = new
                    changed = True
            if rounds > topo.n_nodes + 2:  # pragma: no cover - safety net
                raise RuntimeError("state propagation failed to converge")
        self.propagation_rounds = rounds

    def totally_unsafe(self) -> bool:
        """No safe node remains (the easily detected global condition
        under which Condition 3 can no longer be guaranteed)."""
        return all(s != SAFE for s in self.states)

    def condition2_attainable(self, src: int, dst: int) -> bool:
        """The paper: ROUTE_C "has the interesting property that it is
        known for a node, whether condition 2 can be met or not."

        Our reconstruction of that knowledge: a minimal path exists
        whose intermediate nodes are all *safe* (endpoints may be
        unsafe).  When this predicate holds, ROUTE_C is guaranteed to
        deliver over a minimal path (tested); when it does not, minimal
        delivery may still happen but is not promised.
        """
        if self.states[src] == FAULTY or self.states[dst] == FAULTY:
            return False
        topo = self.topology
        memo: dict[int, bool] = {}

        def ok(u: int) -> bool:
            if u == dst:
                return True
            if u in memo:
                return memo[u]
            memo[u] = False  # cycle guard (minimal moves cannot cycle,
            #                  but keep the memo total)
            for dim in topo.differing_dimensions(u, dst):
                v = u ^ (1 << dim)
                if not self.faults.link_ok(u, v):
                    continue
                st = self.states[v]
                if v != dst and st != SAFE:
                    continue
                if st == FAULTY:
                    continue
                if ok(v):
                    memo[u] = True
                    return True
            return memo[u]

        return ok(src)


class RouteCRouting(RoutingAlgorithm):
    name = "route_c"
    n_vcs = 1 + N_DETOUR_CLASSES
    fault_tolerant = True

    def __init__(self):
        self.state_map: CubeStateMap | None = None

    def check_topology(self, topology: Topology) -> None:
        if not isinstance(topology, Hypercube):
            raise RoutingError("ROUTE_C runs on hypercubes")

    def reset(self, network) -> None:
        self.state_map = CubeStateMap(network.topology,
                                      network.known_faults)

    def on_fault_update(self, network, nodes=None) -> None:
        assert self.state_map is not None
        self.state_map.recompute()

    def accepts(self, src: int, dst: int) -> bool:
        assert self.state_map is not None
        return (self.state_map.state(src) != FAULTY
                and self.state_map.state(dst) != FAULTY)

    # -- helpers ---------------------------------------------------------

    def _usable(self, router, dim: int, header: Header) -> bool:
        """Link alive and the neighbour acceptable (set 1)."""
        sm = self.state_map
        assert sm is not None
        p = router.topology.port(router.node, dim)
        if p is None or not sm.faults.link_ok(router.node, p.neighbor):
            return False
        nb = p.neighbor
        if sm.state(nb) == FAULTY:
            return False
        if sm.state(nb) == SUNSAFE and nb != header.dst:
            return False
        return True

    def _phase_dims(self, router, header: Header) -> tuple[list[int], list[int]]:
        """(ascending-phase dims, descending-phase dims) still needed."""
        diff = router.node ^ header.dst
        up = []
        down = []
        for i in range(router.topology.dimension):
            if diff >> i & 1:
                if router.node >> i & 1:
                    down.append(i)   # 1 -> 0
                else:
                    up.append(i)     # 0 -> 1
        return up, down

    def _neighbor_pref(self, router, dim: int) -> int:
        """Safer neighbours first (set-1 preference), then load."""
        sm = self.state_map
        assert sm is not None
        nb = router.topology.port(router.node, dim).neighbor
        return SEVERITY[sm.state(nb)]

    # -- the decision ------------------------------------------------------------

    def route(self, router, header: Header, in_port: int,
              in_vc: int) -> RouteDecision:
        steps = 2  # decide_dir + decide_vc, always (paper Section 5)
        if router.node == header.dst:
            return RouteDecision.delivery(steps=steps)
        sm = self.state_map
        assert sm is not None
        vc_class = int(header.fields.get("vc_class", 0))
        up, down = self._phase_dims(router, header)
        minimal = up if up else down

        # Never u-turn: immediately undoing a detour flip would create a
        # two-channel cycle within the detour class.
        usable_min = [d for d in minimal
                      if d != in_port and self._usable(router, d, header)]
        if usable_min:
            ordered = sorted(
                usable_min,
                key=lambda d: (self._neighbor_pref(router, d),
                               router.output_load(d), d))
            return RouteDecision(
                candidates=[(d, vc_class) for d in ordered], steps=steps)

        # Detour: flip a dimension outside the current phase's minimal
        # set, moving to the next hops-so-far class.  Dimensions of the
        # *other* phase still reduce the distance, so they are preferred
        # — this keeps Condition 2 (minimal-length delivery) whenever a
        # safe minimal path exists, merely paying a channel class.
        if vc_class >= N_DETOUR_CLASSES:
            return RouteDecision.unroutable(steps=steps)
        other_phase = down if up else []
        detour_dims = [d for d in range(router.topology.dimension)
                       if d not in minimal
                       and d != in_port
                       and self._usable(router, d, header)]
        if not detour_dims:
            return RouteDecision.unroutable(steps=steps)
        ordered = sorted(detour_dims,
                         key=lambda d: (d not in other_phase,
                                        self._neighbor_pref(router, d),
                                        router.output_load(d), d))
        header.fields["_detour_next"] = True
        return RouteDecision(candidates=[(d, vc_class + 1)
                                         for d in ordered], steps=steps)

    def on_depart(self, router, header: Header, out_port: int,
                  out_vc: int) -> None:
        super().on_depart(router, header, out_port, out_vc)
        if header.fields.pop("_detour_next", False):
            header.fields["vc_class"] = int(header.fields.get("vc_class", 0)) + 1
            # an out-of-phase hop still reduces the distance; only a
            # flip outside the remaining dimension set is a misroute
            diff = router.node ^ header.dst
            if not diff >> out_port & 1:
                header.mark_misrouted()

    def decision_steps_range(self) -> tuple[int, int]:
        return (2, 2)


class StrippedRouteC(RoutingAlgorithm):
    """The paper's non-fault-tolerant comparison point: "behave exactly
    like the original algorithm in a fault-free network" — two-phase
    fully adaptive minimal routing on VC0, no state machine, no detour
    channels, one interpretation step per decision."""

    name = "route_c_nft"
    n_vcs = 1
    fault_tolerant = False

    def check_topology(self, topology: Topology) -> None:
        if not isinstance(topology, Hypercube):
            raise RoutingError("stripped ROUTE_C runs on hypercubes")

    def route(self, router, header: Header, in_port: int,
              in_vc: int) -> RouteDecision:
        if router.node == header.dst:
            return RouteDecision.delivery()
        diff = router.node ^ header.dst
        up = []
        down = []
        for i in range(router.topology.dimension):
            if diff >> i & 1:
                if router.node >> i & 1:
                    down.append(i)
                else:
                    up.append(i)
        minimal = up if up else down
        ordered = sorted(minimal, key=lambda d: (router.output_load(d), d))
        return RouteDecision(candidates=[(d, 0) for d in ordered], steps=1)

    def decision_steps_range(self) -> tuple[int, int]:
        return (1, 1)

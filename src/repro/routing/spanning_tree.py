"""Spanning-tree routing: the trivial fault-tolerant baseline.

Paper Section 2.1: "It is clear that there exists the following simple
routing algorithm which solves the problem: 1. Compute a spanning tree
for the network graph every time new faults occur.  2. Route messages
by only using edges of the tree.  However this algorithm uses only a
small fraction of the network links in most cases ... the shortest ways
(minimal paths) between two nodes are nearly never taken."

We reproduce it exactly so the benchmarks can show that gap: BFS tree
over the healthy subgraph, recomputed on every fault event; messages
climb toward the root until they reach the lowest common ancestor and
descend.  Up-then-down over a tree is deadlock-free with a single
virtual channel (up-channels point rootward — acyclic; down-channels
leafward — acyclic; a message never goes up after going down).
"""

from __future__ import annotations

from collections import deque

from ..sim.flit import Header
from ..sim.topology import Topology
from .base import RouteDecision, RoutingAlgorithm, RoutingError


class SpanningTreeRouting(RoutingAlgorithm):
    name = "spanning_tree"
    n_vcs = 1
    fault_tolerant = True
    # the tree is a pure function of the fault knowledge; re-routing a
    # blocked head can only change anything after a fault update
    adaptive = False

    def __init__(self, root: int = 0):
        self.root = root
        self.parent: list[int | None] = []
        self.depth: list[int] = []
        self.parent_port: list[int | None] = []

    def check_topology(self, topology: Topology) -> None:
        if topology.n_nodes < 1:  # pragma: no cover
            raise RoutingError("empty topology")

    def reset(self, network) -> None:
        self._rebuild(network)

    def on_fault_update(self, network, nodes=None) -> None:
        self._rebuild(network)

    def _rebuild(self, network) -> None:
        topo = network.topology
        faults = network.known_faults
        n = topo.n_nodes
        self.parent = [None] * n
        self.parent_port = [None] * n
        self.depth = [-1] * n
        root = self.root
        if not faults.node_ok(root):
            alive = [v for v in topo.nodes() if faults.node_ok(v)]
            if not alive:
                return
            root = alive[0]
        self.depth[root] = 0
        q = deque([root])
        while q:
            cur = q.popleft()
            for pid, port in topo.ports(cur).items():
                nb = port.neighbor
                if self.depth[nb] >= 0 or not faults.link_ok(cur, nb):
                    continue
                self.depth[nb] = self.depth[cur] + 1
                self.parent[nb] = cur
                self.parent_port[nb] = port.neighbor_port
                q.append(nb)

    def accepts(self, src: int, dst: int) -> bool:
        return (0 <= src < len(self.depth) and self.depth[src] >= 0
                and self.depth[dst] >= 0)

    def _on_path_to_root(self, node: int, dst: int) -> bool:
        """Is node an ancestor of dst (i.e. should we descend)?"""
        cur: int | None = dst
        while cur is not None:
            if cur == node:
                return True
            cur = self.parent[cur]
        return False

    def route(self, router, header: Header, in_port: int,
              in_vc: int) -> RouteDecision:
        node = router.node
        if node == header.dst:
            return RouteDecision.delivery()
        if self.depth[node] < 0 or self.depth[header.dst] < 0:
            return RouteDecision.unroutable()
        if self._on_path_to_root(node, header.dst):
            # descend: find the child on the path to dst
            cur = header.dst
            while self.parent[cur] != node:
                cur = self.parent[cur]  # type: ignore[assignment]
                if cur is None:  # pragma: no cover - guarded above
                    return RouteDecision.unroutable()
            for pid, port in router.topology.ports(node).items():
                if port.neighbor == cur:
                    return RouteDecision(candidates=[(pid, 0)])
            return RouteDecision.unroutable()  # pragma: no cover
        # climb toward the root
        port = self.parent_port[node]
        if port is None:
            return RouteDecision.unroutable()
        return RouteDecision(candidates=[(port, 0)])

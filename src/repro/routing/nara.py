"""NARA: fully adaptive minimal routing on 2-D meshes (non-fault-
tolerant; the base NAFTA builds on, [CuA95] via this paper).

Two virtual channels per link form two virtual networks derived from
the turn model [GlN92]:

* VC0 — *north-last*: the turns N->E and N->W are prohibited, so
  messages mix {E, W, S} moves freely and may go north only as an
  uninterrupted terminal run;
* VC1 — *south-last*: S->E and S->W prohibited; {E, W, N} free, south
  terminal.

A message whose destination lies to the south routes in VC0, one whose
destination lies to the north in VC1; within its network every minimal
path is available, which is Condition 1 ("If all links of all minimal
paths between source and destination are unbroken, then every such
path can be selected dependent on the load of the network") — the
deadlock-freedom and full-adaptivity of this construction are verified
by the channel-dependency-graph tests in ``tests/analysis``.

The adaptivity criterion is the paper's: the amount of data still
assigned to each output (Section 2.2, "the amount of data that still
has to pass a node as adaptivity criterion").
"""

from __future__ import annotations

from ..sim.flit import Header
from ..sim.topology import (EAST, NORTH, SOUTH, WEST, Mesh2D, Torus2D,
                            Topology)
from .base import (REFRESH_RESORT, REFRESH_STATIC, RouteDecision,
                   RoutingAlgorithm, RoutingError)

#: free move set and terminal direction of each virtual network
VN_FREE = {0: (EAST, WEST, SOUTH), 1: (EAST, WEST, NORTH)}
VN_TERMINAL = {0: NORTH, 1: SOUTH}


def assign_virtual_network(topology: Mesh2D, src: int, dst: int) -> int:
    """VC1 for north-bound messages, VC0 for south-bound and row
    messages (row messages are unrestricted in either network)."""
    _, y = topology.coords(src)
    _, dy = topology.coords(dst)
    return 1 if dy > y else 0


class NaraRouting(RoutingAlgorithm):
    name = "nara"
    n_vcs = 2
    fault_tolerant = False
    cache_mutable_fields = ("vn",)
    # route() consults nothing but geometry and the vn field (in_port,
    # in_vc, path_len are never read), so the native key is safely finer
    native_fields = ("vn",)
    native_key_uses_port = False
    native_key_uses_vc = False
    # the candidate set is pure geometry per (node, dst, vn) — signs
    # alone on the mesh — so the build-time clean table applies
    native_clean_table = True

    def __init__(self):
        # unordered candidate sets are pure geometry (node, dst, vn) —
        # memoized across the run; only the load ordering is dynamic
        self._cand_cache: dict[tuple[int, int, int],
                               list[tuple[int, int]]] = {}

    def check_topology(self, topology: Topology) -> None:
        if not isinstance(topology, Mesh2D) or isinstance(topology, Torus2D):
            raise RoutingError("NARA runs on 2-D meshes")

    def _virtual_network(self, router, header: Header) -> int:
        vn = header.fields.get("vn")
        if vn is None:
            vn = assign_virtual_network(router.topology, router.node,
                                        header.dst)
            header.fields["vn"] = vn
        return vn

    def route(self, router, header: Header, in_port: int,
              in_vc: int) -> RouteDecision:
        if router.node == header.dst:
            return RouteDecision(deliver=True, steps=1,
                                 refresh_hint=REFRESH_STATIC)
        vn = self._virtual_network(router, header)
        key = (router.node, header.dst, vn)
        candidates = self._cand_cache.get(key)
        if candidates is None:
            candidates = self._candidates(router.topology, router.node,
                                          header.dst, vn)
            self._cand_cache[key] = candidates
        candidates = self._order(candidates, router)
        # the candidate set is pure geometry per (node, dst, vn); only
        # the load ordering is dynamic, so refreshes are re-sorts
        return RouteDecision(candidates=candidates, steps=1,
                             refresh_hint=REFRESH_RESORT)

    @staticmethod
    def _candidates(topo: Mesh2D, node: int, dst: int,
                    vn: int) -> list[tuple[int, int]]:
        minimal = topo.minimal_ports(node, dst)
        free = VN_FREE[vn]
        term = VN_TERMINAL[vn]
        candidates = [(p, vn) for p in minimal if p in free]
        if term in minimal:
            # only reachable after an overshoot, which NARA never does;
            # kept for interface symmetry with NAFTA
            x, _ = topo.coords(node)
            dx, _ = topo.coords(dst)
            if x == dx:
                candidates.append((term, vn))
        return candidates

    def route_cache_key(self, node, header, in_port, in_vc):
        # the decision depends only on geometry and the virtual network
        # already assigned (in_port/in_vc are never consulted)
        return (node, header.dst, header.fields.get("vn"))

    @staticmethod
    def _order(candidates, router):
        """NARA's adaptivity: least committed data first."""
        if len(candidates) < 2:
            return candidates
        return sorted(candidates,
                      key=lambda pv: (router.output_load(pv[0]), pv[0]))

    def decision_steps_range(self) -> tuple[int, int]:
        return (1, 1)

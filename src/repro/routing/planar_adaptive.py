"""Planar-Adaptive Routing (Chien/Kim [ChK92]).

One of the two routers the paper names as "implementations of advanced
adaptive routing methods [and] good references for the optimizations
possible by choosing an appropriate routing algorithm" (Section 1).

The idea: restrict adaptivity to a sequence of *planes*.  Plane ``A_i``
spans dimensions ``d_i`` and ``d_(i+1)``; a message first routes fully
adaptively within ``A_0`` until dimension 0 is corrected, then within
``A_1``, and so on; the last plane corrects both of its dimensions.
Within a plane there are two virtual networks selected by the sign of
the remaining ``d_(i+1)`` offset — the increasing network only ever
raises ``d_(i+1)``, the decreasing one only lowers it — and each
network owns its own copy of the ``d_i`` channels, which is what makes
each plane's channel dependency graph acyclic.

Virtual channel budget (Chien/Kim's "three virtual channels"): a
dimension-``j`` link carries

* VC0 — plane ``A_j``, increasing network (``d_j`` is the first dim),
* VC1 — plane ``A_j``, decreasing network,
* VC2 — plane ``A_(j-1)`` (``d_j`` is the second dim; the link's
  direction determines which network it serves).

Plane order gives one-way cross-plane dependencies, so the whole graph
is acyclic — machine-checked by the CDG tests.

Fault handling (simplified reconstruction, documented): candidates are
filtered by link health; a message whose in-plane candidates are all
fault-blocked is declared unroutable rather than misrouted across
planes.  This keeps the deadlock argument intact and matches the
paper's framing of PAR as a *reference point*, not its subject.
"""

from __future__ import annotations

from ..sim.flit import Header
from ..sim.topology import Mesh2D, MeshND, Topology, Torus2D
from .base import RouteDecision, RoutingAlgorithm, RoutingError

VC_FIRST_INC = 0   # first-dim channels of the increasing network
VC_FIRST_DEC = 1   # first-dim channels of the decreasing network
VC_SECOND = 2      # second-dim channels (direction selects the network)


class PlanarAdaptiveRouting(RoutingAlgorithm):
    name = "par"
    n_vcs = 3
    fault_tolerant = True   # degrades gracefully; see module docstring

    def check_topology(self, topology: Topology) -> None:
        if isinstance(topology, Torus2D):
            raise RoutingError("PAR needs meshes without wrap-around")
        if not isinstance(topology, (MeshND, Mesh2D)):
            raise RoutingError("PAR runs on n-dimensional meshes")

    # -- coordinate helpers (Mesh2D or MeshND) ----------------------------

    @staticmethod
    def _coords(topo, node: int) -> tuple[int, ...]:
        return tuple(topo.coords(node))

    @staticmethod
    def _n_dims(topo) -> int:
        return topo.n_dims if isinstance(topo, MeshND) else 2

    @staticmethod
    def _port(topo, dim: int, positive: bool) -> int:
        if isinstance(topo, MeshND):
            return 2 * dim + (0 if positive else 1)
        # Mesh2D: EAST=0 WEST=1 NORTH=2 SOUTH=3
        if dim == 0:
            return 0 if positive else 1
        return 2 if positive else 3

    # -- the decision -------------------------------------------------------

    def route(self, router, header: Header, in_port: int,
              in_vc: int) -> RouteDecision:
        topo = router.topology
        if router.node == header.dst:
            return RouteDecision.delivery()
        cur = self._coords(topo, router.node)
        dst = self._coords(topo, header.dst)
        n = self._n_dims(topo)

        # current plane: the lowest i with a remaining offset, capped at
        # the last plane (n-2), which corrects both of its dimensions
        plane = 0
        while plane < n - 1 and cur[plane] == dst[plane]:
            plane += 1
        plane = min(plane, max(0, n - 2))
        d1 = plane
        d2 = plane + 1

        delta1 = dst[d1] - cur[d1]
        delta2 = dst[d2] - cur[d2]
        # network choice: sign of the second-dim offset (ties -> inc)
        increasing = delta2 >= 0
        first_vc = VC_FIRST_INC if increasing else VC_FIRST_DEC

        candidates: list[tuple[int, int]] = []
        if delta1 != 0:
            port = self._port(topo, d1, delta1 > 0)
            if router.port_alive(port):
                candidates.append((port, first_vc))
        if delta2 != 0:
            port = self._port(topo, d2, delta2 > 0)
            if router.port_alive(port):
                candidates.append((port, VC_SECOND))
        if not candidates:
            # in-plane progress is impossible: either the message is
            # boxed in by faults (unroutable — the simplification) or
            # this cannot happen fault-free (both offsets zero was
            # handled by plane advance / delivery)
            return RouteDecision.unroutable()
        ordered = sorted(candidates,
                         key=lambda pv: (router.output_load(pv[0]), pv[0]))
        return RouteDecision(candidates=ordered)

"""Distributed fault state for 2-D meshes (NAFTA's knowledge layer).

The paper describes NAFTA's fault knowledge as wave-propagated node
states oriented at geometric patterns (columns/rows), e.g.
"dead-end-east" = all columns to the east have at least one fault, and
says "concave fault patterns are completed to a convex shape excluding
the use of some non-faulty nodes, violating condition 3"
(Section 2.2).  [CuA95] is not available, so this module reconstructs
that layer from the paper's description (see DESIGN.md Section 3):

* **deactivation (convex completion)**: a healthy node deactivates when
  it has a blocked (faulty or deactivated) neighbour in an x-direction
  *and* one in a y-direction; iterated to fixpoint this completes fault
  regions to rectangles ("fault blocks", as in the classic
  Boppana/Chalasani model the paper cites);
* **clear-run counters**: per node and direction, the number of
  consecutive usable nodes before a blocked cell or the mesh border —
  the information a router needs to decide whether the terminal run of
  a turn-model path is safe.  Each counter is log2(mesh extent) bits,
  i.e. constant per node, and is computed by exactly the wave-like
  neighbour propagation the paper describes;
* **dead-end flags**: the literal states of the paper
  ("dead-end-east" etc.): every column strictly to the east (resp.
  west/north/south rows/columns) contains at least one fault.

Everything is recomputed in the diagnosis phase after each fault event
(assumption iv), by fixpoint iteration that models the settling of the
neighbour-exchange waves.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..sim.faults import FaultState
from ..sim.topology import EAST, NORTH, SOUTH, WEST, Mesh2D


@dataclass
class MeshNodeState:
    """Per-node distributed state (constant size per node)."""

    faulty: bool = False
    deactivated: bool = False
    # consecutive usable nodes in each direction before a block/border
    run: dict[int, int] = field(default_factory=lambda: {
        EAST: 0, WEST: 0, NORTH: 0, SOUTH: 0})
    # border-clear: True if the run in this direction reaches the mesh
    # border without meeting a blocked cell
    run_to_border: dict[int, bool] = field(default_factory=lambda: {
        EAST: True, WEST: True, NORTH: True, SOUTH: True})
    dead_end: dict[int, bool] = field(default_factory=lambda: {
        EAST: False, WEST: False, NORTH: False, SOUTH: False})

    @property
    def blocked(self) -> bool:
        """Blocked cells are excluded from routing (set 1 of the paper)."""
        return self.faulty or self.deactivated


class MeshFaultMap:
    """The settled distributed state of all mesh nodes."""

    def __init__(self, topology: Mesh2D, faults: FaultState):
        self.topology = topology
        self.faults = faults
        self.states: list[MeshNodeState] = [MeshNodeState()
                                            for _ in topology.nodes()]
        self.propagation_rounds = 0
        self.recompute()

    # -- queries ------------------------------------------------------------

    def state(self, node: int) -> MeshNodeState:
        return self.states[node]

    def blocked(self, node: int) -> bool:
        return self.states[node].blocked

    def usable_link(self, node: int, port: int) -> bool:
        """Link alive and the far end is not a blocked cell."""
        p = self.topology.port(node, port)
        if p is None:
            return False
        if not self.faults.link_ok(node, p.neighbor):
            return False
        return not self.states[p.neighbor].blocked

    def clear_run(self, node: int, direction: int) -> int:
        return self.states[node].run[direction]

    def run_reaches(self, node: int, direction: int, hops: int) -> bool:
        """Can a straight run of ``hops`` usable hops start here?"""
        return self.states[node].run[direction] >= hops

    def n_deactivated(self) -> int:
        return sum(1 for s in self.states if s.deactivated and not s.faulty)

    def blocked_nodes(self) -> set[int]:
        return {n for n in self.topology.nodes() if self.states[n].blocked}

    # -- recomputation (the diagnosis phase) ----------------------------------

    def recompute(self) -> None:
        topo = self.topology
        for n in topo.nodes():
            st = self.states[n]
            st.faulty = not self.faults.node_ok(n)
            st.deactivated = False
        self._converge_deactivation()
        self._compute_runs()
        self._compute_dead_ends()

    def _blocked_neighbor(self, node: int, port: int) -> bool:
        """Is the neighbour in this direction a blocked cell, or the
        connecting link dead?  Mesh borders do NOT count as blocked
        (otherwise every corner would deactivate)."""
        p = self.topology.port(node, port)
        if p is None:
            return False
        if not self.faults.link_ok(node, p.neighbor):
            return True
        return self.states[p.neighbor].blocked

    def _converge_deactivation(self) -> None:
        """Rectangular convex completion by wave propagation."""
        topo = self.topology
        rounds = 0
        changed = True
        while changed:
            changed = False
            rounds += 1
            for n in topo.nodes():
                st = self.states[n]
                if st.blocked:
                    continue
                x_block = (self._blocked_neighbor(n, EAST)
                           or self._blocked_neighbor(n, WEST))
                y_block = (self._blocked_neighbor(n, NORTH)
                           or self._blocked_neighbor(n, SOUTH))
                if x_block and y_block:
                    st.deactivated = True
                    changed = True
            if rounds > topo.n_nodes + 1:  # pragma: no cover - safety net
                raise RuntimeError("deactivation failed to converge")
        self.propagation_rounds = rounds

    def _compute_runs(self) -> None:
        """run[d] = usable hops in direction d before a block/border.

        Computed by sweeping each direction once — the discrete result
        of the wave-like neighbour exchange settling.
        """
        topo = self.topology
        order = {
            EAST: [topo.node_at(x, y) for y in range(topo.height)
                   for x in range(topo.width - 1, -1, -1)],
            WEST: [topo.node_at(x, y) for y in range(topo.height)
                   for x in range(topo.width)],
            NORTH: [topo.node_at(x, y) for x in range(topo.width)
                    for y in range(topo.height - 1, -1, -1)],
            SOUTH: [topo.node_at(x, y) for x in range(topo.width)
                    for y in range(topo.height)],
        }
        for direction, nodes in order.items():
            for n in nodes:
                st = self.states[n]
                p = self.topology.port(n, direction)
                if p is None:
                    st.run[direction] = 0
                    st.run_to_border[direction] = True
                    continue
                if (not self.faults.link_ok(n, p.neighbor)
                        or self.states[p.neighbor].blocked):
                    st.run[direction] = 0
                    st.run_to_border[direction] = False
                    continue
                nb = self.states[p.neighbor]
                st.run[direction] = 1 + nb.run[direction]
                st.run_to_border[direction] = nb.run_to_border[direction]

    def _compute_dead_ends(self) -> None:
        """The paper's literal dead-end states: dead_end[EAST] at (x,y)
        means every column strictly east of x contains >= 1 fault."""
        topo = self.topology
        col_has_fault = [False] * topo.width
        row_has_fault = [False] * topo.height
        for n in topo.nodes():
            if self.states[n].blocked:
                x, y = topo.coords(n)
                col_has_fault[x] = True
                row_has_fault[y] = True
        # suffix/prefix products
        east_all = [True] * (topo.width + 1)   # east_all[x]: cols > x-1 ... helper
        for x in range(topo.width - 1, -1, -1):
            east_all[x] = east_all[x + 1] and col_has_fault[x]
        west_all = [True] * (topo.width + 1)
        for x in range(topo.width):
            west_all[x + 1] = west_all[x] and col_has_fault[x]
        north_all = [True] * (topo.height + 1)
        for y in range(topo.height - 1, -1, -1):
            north_all[y] = north_all[y + 1] and row_has_fault[y]
        south_all = [True] * (topo.height + 1)
        for y in range(topo.height):
            south_all[y + 1] = south_all[y] and row_has_fault[y]
        for n in topo.nodes():
            x, y = topo.coords(n)
            st = self.states[n]
            st.dead_end[EAST] = east_all[x + 1]
            st.dead_end[WEST] = west_all[x]
            st.dead_end[NORTH] = north_all[y + 1]
            st.dead_end[SOUTH] = south_all[y]

"""Dimension-order routing for k-ary n-cubes with dateline virtual
channels.

Generalizes :class:`~repro.routing.dimension_order.TorusDatelineXY` to
any number of dimensions: a worm corrects dimensions in ascending
order, taking the shorter way around each ring; within a dimension it
starts on VC0 and switches to VC1 after crossing that ring's dateline
(wrap link), which breaks the ring's channel cycle; entering the next
dimension resets to VC0.  Deadlock-free by the standard
dimension-order + dateline argument, oblivious and non-fault-tolerant —
the k-ary n-cube baseline the torus literature the paper cites
([ChB95a], [CyG94]) measures against.
"""

from __future__ import annotations

from ..sim.flit import Header
from ..sim.topology import KAryNCube, Topology
from .base import RouteDecision, RoutingAlgorithm, RoutingError


class KAryNCubeDOR(RoutingAlgorithm):
    name = "karyn_dor"
    n_vcs = 2
    fault_tolerant = False

    def check_topology(self, topology: Topology) -> None:
        if not isinstance(topology, KAryNCube):
            raise RoutingError("k-ary n-cube DOR needs a KAryNCube")

    def route(self, router, header: Header, in_port: int,
              in_vc: int) -> RouteDecision:
        topo: KAryNCube = router.topology
        cur = topo.coords(router.node)
        dst = topo.coords(header.dst)
        if cur == dst:
            return RouteDecision.delivery()
        for dim in range(topo.n):
            if cur[dim] == dst[dim]:
                continue
            fwd = (dst[dim] - cur[dim]) % topo.k
            bwd = (cur[dim] - dst[dim]) % topo.k
            plus = fwd <= bwd
            port = 2 * dim if plus else 2 * dim + 1
            # does this hop cross the ring's wrap link (the dateline)?
            wraps = (plus and cur[dim] == topo.k - 1) or \
                    (not plus and cur[dim] == 0)
            active = header.fields.get("kdim")
            vc = header.fields.get("kvc", 0)
            if active != dim:
                vc = 0  # a new dimension starts on VC0
            header.fields["_knext"] = (dim, wraps, vc)
            return RouteDecision(candidates=[(port, vc)])
        return RouteDecision.delivery()  # pragma: no cover

    def on_depart(self, router, header: Header, out_port: int,
                  out_vc: int) -> None:
        super().on_depart(router, header, out_port, out_vc)
        dim, wraps, vc = header.fields.pop("_knext", (None, False, 0))
        if dim is None:  # pragma: no cover - ejection
            return
        header.fields["kdim"] = dim
        header.fields["kvc"] = 1 if (wraps or vc == 1) else 0

"""Ruleset loading: DSL sources + FCFB function implementations +
nft manifests (the paper's Table 1/2 "nft" column).

``load_ruleset`` compiles one of the shipped rule programs with
concrete parameters and returns a ready :class:`RuleEngine` plus its
manifest.  The FCFB-backed FUNCTIONs declared in the sources get their
reference implementations here — these are the software models of the
configurable function blocks.
"""

from __future__ import annotations

import importlib.resources
from dataclasses import dataclass, field
from typing import Mapping

from ...core.compiler import CompiledProgram, compile_program
from ...core.engine import RuleEngine
from ...sim.topology import EAST, NORTH, SOUTH, WEST

# virtual-network structure shared with repro.routing.nara
_VN_FREE = {0: (EAST, WEST, SOUTH), 1: (EAST, WEST, NORTH)}
_VN_TERM = {0: NORTH, 1: SOUTH}


# ---------------------------------------------------------------------------
# FCFB function implementations (mesh / NAFTA)
# ---------------------------------------------------------------------------

def minimal_cands(xpos: int, ypos: int, xdes: int, ydes: int,
                  vn: int) -> frozenset:
    """Minimal directions admissible in the message's virtual network,
    including the terminal direction when entered from the destination
    column/row (the 'mesh distance computation' FCFB)."""
    out = set()
    if xdes > xpos:
        out.add(EAST)
    if xdes < xpos:
        out.add(WEST)
    if ydes > ypos and NORTH in _VN_FREE[vn]:
        out.add(NORTH)
    if ydes < ypos and SOUTH in _VN_FREE[vn]:
        out.add(SOUTH)
    term = _VN_TERM[vn]
    if xpos == xdes:
        if term == NORTH and ydes > ypos:
            out.add(NORTH)
        if term == SOUTH and ydes < ypos:
            out.add(SOUTH)
    return frozenset(out)


def qbest(cands: frozenset, q0: int, q1: int, q2: int, q3: int) -> int:
    """Least-loaded direction of a candidate set ('minimum selection')."""
    loads = (q0, q1, q2, q3)
    if not cands:
        raise ValueError("qbest on an empty candidate set")
    return min(cands, key=lambda d: (loads[d], d))


def termdir(vn: int) -> int:
    return _VN_TERM[vn]


def detour_set(avail: frozenset, vn: int, indir: int) -> frozenset:
    """Non-minimal escape directions: the free moves of the virtual
    network, minus the arrival port ('set subtraction')."""
    free = frozenset(_VN_FREE[vn])
    return (avail & free) - {indir}


def detour_pick(cands: frozenset, sdir: int, indir: int,
                xpos: int, xdes: int) -> int:
    """Detour preference: sticky search direction first, then toward
    the destination column, then lowest port id."""
    if not cands:
        raise ValueError("detour_pick on an empty candidate set")
    sticky = {1: EAST, 2: WEST}.get(sdir)

    def rank(port: int):
        toward = (port == EAST and xdes > xpos) or \
                 (port == WEST and xdes < xpos)
        return (0 if port == sticky else 1, 0 if toward else 1, port)

    return min(cands, key=rank)


def pick_min(cands: frozenset) -> int:
    """Lowest index of a set ('minimum selection' for the cube)."""
    if not cands:
        raise ValueError("pick_min on an empty set")
    return min(cands)


NAFTA_FUNCTIONS = {
    "minimal_cands": minimal_cands,
    "qbest": qbest,
    "termdir": termdir,
    "detour_set": detour_set,
    "detour_pick": detour_pick,
}

ROUTE_C_FUNCTIONS = {
    "pick_min": pick_min,
}


# ---------------------------------------------------------------------------
# Manifests
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class RulesetSpec:
    name: str
    filename: str
    default_params: dict
    #: rule bases also needed by the non-fault-tolerant variant — the
    #: paper's Table 1/2 "nft" column
    nft_bases: frozenset
    functions: dict = field(default_factory=dict)


RULESETS = {
    "nafta": RulesetSpec(
        name="nafta",
        filename="nafta.rules",
        default_params={"xsize": 16, "ysize": 16, "qmax": 63, "rmax": 15},
        nft_bases=frozenset({
            "incoming_message", "message_finished", "tell_my_neighbors",
            "flit_finished", "message_from_info_channel"}),
        functions=NAFTA_FUNCTIONS),
    "route_c": RulesetSpec(
        name="route_c",
        filename="route_c.rules",
        default_params={"d": 6, "a": 2},
        nft_bases=frozenset({"decide_dir", "adaptivity"}),
        functions=ROUTE_C_FUNCTIONS),
    "route_c_merged": RulesetSpec(
        name="route_c_merged",
        filename="route_c_merged.rules",
        default_params={"d": 6, "a": 2},
        nft_bases=frozenset(),
        functions=ROUTE_C_FUNCTIONS),
}


def ruleset_source(name: str) -> str:
    spec = RULESETS[name]
    pkg = importlib.resources.files(__package__)
    return (pkg / spec.filename).read_text()


def compile_ruleset(name: str, params: Mapping | None = None,
                    materialize: bool = True) -> CompiledProgram:
    spec = RULESETS[name]
    merged = dict(spec.default_params)
    merged.update(params or {})
    return compile_program(ruleset_source(name), params=merged,
                           materialize=materialize)


def load_ruleset(name: str, params: Mapping | None = None,
                 mode: str = "table", fastpath: bool = True) -> RuleEngine:
    """Compile a shipped ruleset and wire up its FCFB functions.

    ``fastpath=False`` selects the interpreted table pipeline (AST walk
    per decision) — the reference the throughput benchmark compares
    against.
    """
    spec = RULESETS[name]
    compiled = compile_ruleset(name, params)
    return RuleEngine(compiled, functions=spec.functions, mode=mode,
                      fastpath=fastpath)

"""Shipped DSL rule programs (NAFTA, ROUTE_C, merged ROUTE_C) with
their FCFB function implementations and nft manifests."""

from .loader import (NAFTA_FUNCTIONS, ROUTE_C_FUNCTIONS, RULESETS,
                     RulesetSpec, compile_ruleset, load_ruleset,
                     ruleset_source)

__all__ = ["NAFTA_FUNCTIONS", "ROUTE_C_FUNCTIONS", "RULESETS",
           "RulesetSpec", "compile_ruleset", "load_ruleset",
           "ruleset_source"]

"""Registry of routing algorithms by name (used by the experiment
harness and the examples), plus per-algorithm conformance metadata
consumed by :mod:`repro.conformance`."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from .base import RoutingAlgorithm
from .dimension_order import ECubeRouting, TorusDatelineXY, XYRouting
from .duato import DuatoMeshRouting
from .karyn import KAryNCubeDOR
from .nafta import NaftaRouting
from .nara import NaraRouting
from .planar_adaptive import PlanarAdaptiveRouting
from .route_c import RouteCRouting, StrippedRouteC
from .rule_driven import RuleDrivenNafta, RuleDrivenRouteC
from .spanning_tree import SpanningTreeRouting
from .updown import UpDownRouting

ALGORITHMS: dict[str, Callable[[], RoutingAlgorithm]] = {
    "xy": XYRouting,
    "ecube": ECubeRouting,
    "torus_xy": TorusDatelineXY,
    "duato": DuatoMeshRouting,
    "karyn_dor": KAryNCubeDOR,
    "nara": NaraRouting,
    "nafta": NaftaRouting,
    "route_c": RouteCRouting,
    "route_c_nft": StrippedRouteC,
    "spanning_tree": SpanningTreeRouting,
    "updown": UpDownRouting,
    "par": PlanarAdaptiveRouting,
    "nafta_rules": RuleDrivenNafta,
    "route_c_rules": RuleDrivenRouteC,
}


def make_algorithm(name: str, *, topology=None, **kwargs) -> RoutingAlgorithm:
    """Instantiate a registered algorithm.

    Extra keyword arguments are forwarded to the factory — used by the
    conformance harness to select interpreter variants on the
    rule-driven algorithms (``engine_mode=``, ``fastpath=``).

    A ``"<name>+frr"`` spelling wraps the named algorithm in
    :class:`~repro.routing.backup.FastReroute` (precompiled backup
    next-hop tables, activated per link on local fault confirmation);
    it needs ``topology=`` because the backup tables are compiled
    against a concrete network.  The simulator reaches the same wrapper
    through ``SimConfig(backup_routes=True)``, which handles topology
    plumbing itself.
    """
    if name.endswith("+frr"):
        if topology is None:
            raise ValueError(
                f"{name!r} needs topology= (backup tables are compiled "
                f"per topology); or use SimConfig(backup_routes=True)")
        from .backup import FastReroute
        inner = make_algorithm(name[: -len("+frr")], **kwargs)
        return FastReroute(inner, topology)
    try:
        factory = ALGORITHMS[name]
    except KeyError:
        raise ValueError(f"unknown routing algorithm {name!r}; choose from "
                         f"{sorted(ALGORITHMS)}") from None
    return factory(**kwargs)


@dataclass(frozen=True)
class AlgoMeta:
    """What the conformance harness may assume about an algorithm.

    The flags describe *documented* behaviour, not aspirations: an
    oracle only reports a violation when a run contradicts this record,
    so a concession here (``may_stick_under_faults``) weakens fuzzing
    for that algorithm and needs a reason in the comment beside it.
    """

    #: topology kinds (keys of ``sim.topology._TOPOLOGY_KINDS``) the
    #: generator may pair with this algorithm
    topologies: tuple[str, ...]
    #: fault-free delivered paths are shortest paths (hops == distance)
    minimal_fault_free: bool = False
    #: registry name of the non-fault-tolerant algorithm whose decisions
    #: this one must match in fault-free networks (shadow differential)
    nft_equivalent: str | None = None
    #: fault budget the generator may inject (0 = fault-free cases only)
    max_link_faults: int = 0
    max_node_faults: int = 0
    #: under faults the algorithm may refuse src/dst pairs at injection
    #: (``accepts`` returns False; counted unroutable, not a violation)
    may_refuse_under_faults: bool = False
    #: under faults in-flight worms may be declared stuck and dropped
    #: (dead-lettered without retries; not a delivery violation)
    may_stick_under_faults: bool = False
    #: accepts ``engine_mode``/``fastpath`` kwargs — eligible for the
    #: cross-interpreter agreement oracle
    rule_driven: bool = False
    #: additional oracle names beyond the universal set
    extra_oracles: tuple[str, ...] = field(default=())


ALGORITHM_META: dict[str, AlgoMeta] = {
    "xy": AlgoMeta(topologies=("mesh2d",), minimal_fault_free=True),
    "ecube": AlgoMeta(topologies=("hypercube",), minimal_fault_free=True),
    "torus_xy": AlgoMeta(topologies=("torus2d",), minimal_fault_free=True),
    "duato": AlgoMeta(topologies=("mesh2d",), minimal_fault_free=True),
    "karyn_dor": AlgoMeta(topologies=("karyncube",), minimal_fault_free=True),
    "nara": AlgoMeta(topologies=("mesh2d",), minimal_fault_free=True),
    # NAFTA completes fault regions to convex rings: nodes *inside* a
    # completed ring are refused at injection, and worms already in
    # flight when a fault lands may take the Condition-3 concession and
    # stick (the retry layer, not the router, restores delivery)
    "nafta": AlgoMeta(topologies=("mesh2d",), minimal_fault_free=True,
                      nft_equivalent="nara",
                      max_link_faults=2, max_node_faults=1,
                      may_refuse_under_faults=True,
                      may_stick_under_faults=True),
    # ROUTE_C guarantees delivery only while every node stays safe or
    # ordinary-unsafe; the generator keeps faults below the dimension
    # but a worm caught mid-flight by a fault wave can still exhaust
    # its detour classes
    "route_c": AlgoMeta(topologies=("hypercube",),
                        minimal_fault_free=True,
                        nft_equivalent="route_c_nft",
                        max_link_faults=1, max_node_faults=2,
                        may_refuse_under_faults=True,
                        may_stick_under_faults=True,
                        extra_oracles=("route_c_safe_nodes",)),
    "route_c_nft": AlgoMeta(topologies=("hypercube",),
                            minimal_fault_free=True),
    "spanning_tree": AlgoMeta(topologies=("mesh2d", "hypercube"),
                              max_link_faults=2, max_node_faults=1,
                              may_refuse_under_faults=True),
    "updown": AlgoMeta(topologies=("mesh2d", "hypercube"),
                       max_link_faults=2, max_node_faults=1,
                       may_refuse_under_faults=True),
    # planar-adaptive misroutes around fault rings; worms boxed in by a
    # fault wave mid-flight may stick
    "par": AlgoMeta(topologies=("mesh2d",),
                    minimal_fault_free=True,
                    max_link_faults=1, max_node_faults=1,
                    may_refuse_under_faults=True,
                    may_stick_under_faults=True),
    # rule-driven variants interpret .rules programs per decision —
    # roughly an order of magnitude slower, so the generator keeps
    # their cases tiny; they are the cross-interpreter oracle's target
    "nafta_rules": AlgoMeta(topologies=("mesh2d",),
                            minimal_fault_free=True,
                            max_link_faults=1,
                            may_refuse_under_faults=True,
                            may_stick_under_faults=True,
                            rule_driven=True),
    "route_c_rules": AlgoMeta(topologies=("hypercube",),
                              minimal_fault_free=True,
                              max_node_faults=1,
                              may_refuse_under_faults=True,
                              may_stick_under_faults=True,
                              rule_driven=True),
}

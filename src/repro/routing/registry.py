"""Registry of routing algorithms by name (used by the experiment
harness and the examples)."""

from __future__ import annotations

from typing import Callable

from .base import RoutingAlgorithm
from .dimension_order import ECubeRouting, TorusDatelineXY, XYRouting
from .duato import DuatoMeshRouting
from .karyn import KAryNCubeDOR
from .nafta import NaftaRouting
from .nara import NaraRouting
from .planar_adaptive import PlanarAdaptiveRouting
from .route_c import RouteCRouting, StrippedRouteC
from .rule_driven import RuleDrivenNafta, RuleDrivenRouteC
from .spanning_tree import SpanningTreeRouting
from .updown import UpDownRouting

ALGORITHMS: dict[str, Callable[[], RoutingAlgorithm]] = {
    "xy": XYRouting,
    "ecube": ECubeRouting,
    "torus_xy": TorusDatelineXY,
    "duato": DuatoMeshRouting,
    "karyn_dor": KAryNCubeDOR,
    "nara": NaraRouting,
    "nafta": NaftaRouting,
    "route_c": RouteCRouting,
    "route_c_nft": StrippedRouteC,
    "spanning_tree": SpanningTreeRouting,
    "updown": UpDownRouting,
    "par": PlanarAdaptiveRouting,
    "nafta_rules": RuleDrivenNafta,
    "route_c_rules": RuleDrivenRouteC,
}


def make_algorithm(name: str) -> RoutingAlgorithm:
    try:
        return ALGORITHMS[name]()
    except KeyError:
        raise ValueError(f"unknown routing algorithm {name!r}; choose from "
                         f"{sorted(ALGORITHMS)}") from None

"""Oblivious dimension-order routing: XY on 2-D meshes, e-cube on
hypercubes.

These are the classic deadlock-free, non-fault-tolerant baselines the
paper contrasts against ("switches using only oblivious routing
schemes", Section 1): the whole path is fixed by source and
destination, one virtual channel suffices on the mesh/hypercube, and a
routing decision is a single interpretation step.
"""

from __future__ import annotations

from ..sim.flit import Header
from ..sim.topology import (EAST, NORTH, SOUTH, WEST, Hypercube, Mesh2D,
                            Torus2D, Topology)
from .base import RouteDecision, RoutingAlgorithm, RoutingError


class XYRouting(RoutingAlgorithm):
    """Deterministic XY: correct x first, then y.  Mesh only (a torus
    needs extra VCs for the wrap-around cycle, see TorusDatelineXY)."""

    name = "xy"
    n_vcs = 1
    fault_tolerant = False
    adaptive = False

    def check_topology(self, topology: Topology) -> None:
        if not isinstance(topology, Mesh2D) or isinstance(topology, Torus2D):
            raise RoutingError("XY routing runs on 2-D meshes")

    def route(self, router, header: Header, in_port: int,
              in_vc: int) -> RouteDecision:
        topo: Mesh2D = router.topology
        x, y = topo.coords(router.node)
        dx, dy = topo.coords(header.dst)
        if (x, y) == (dx, dy):
            return RouteDecision.delivery()
        if dx > x:
            port = EAST
        elif dx < x:
            port = WEST
        elif dy > y:
            port = NORTH
        else:
            port = SOUTH
        return RouteDecision(candidates=[(port, 0)])


class ECubeRouting(RoutingAlgorithm):
    """Hypercube e-cube: correct the lowest differing dimension first.
    Deadlock-free with one virtual channel (dimension order gives an
    acyclic channel dependency graph)."""

    name = "ecube"
    n_vcs = 1
    fault_tolerant = False
    adaptive = False

    def check_topology(self, topology: Topology) -> None:
        if not isinstance(topology, Hypercube):
            raise RoutingError("e-cube routing runs on hypercubes")

    def route(self, router, header: Header, in_port: int,
              in_vc: int) -> RouteDecision:
        diff = router.node ^ header.dst
        if diff == 0:
            return RouteDecision.delivery()
        dim = (diff & -diff).bit_length() - 1  # lowest set bit
        return RouteDecision(candidates=[(dim, 0)])


class TorusDatelineXY(RoutingAlgorithm):
    """XY on a 2-D torus with two VCs per direction and a dateline:
    a worm starts on VC0 and switches to VC1 when it crosses the wrap
    link of the current dimension, breaking the ring cycles."""

    name = "torus_xy"
    n_vcs = 2
    fault_tolerant = False
    adaptive = False

    def check_topology(self, topology: Topology) -> None:
        if not isinstance(topology, Torus2D):
            raise RoutingError("torus XY runs on 2-D tori")

    def route(self, router, header: Header, in_port: int,
              in_vc: int) -> RouteDecision:
        topo: Torus2D = router.topology
        x, y = topo.coords(router.node)
        dx, dy = topo.coords(header.dst)
        if (x, y) == (dx, dy):
            return RouteDecision.delivery()
        if x != dx:
            right = (dx - x) % topo.width
            left = (x - dx) % topo.width
            port = EAST if right <= left else WEST
            wraps = (port == EAST and x == topo.width - 1) or \
                    (port == WEST and x == 0)
        else:
            up = (dy - y) % topo.height
            down = (y - dy) % topo.height
            port = NORTH if up <= down else SOUTH
            wraps = (port == NORTH and y == topo.height - 1) or \
                    (port == SOUTH and y == 0)
        vc = header.fields.get("torus_vc", 0)
        decision = RouteDecision(candidates=[(port, vc)])
        # remember whether the hop we are about to take crosses a dateline
        header.fields["_wraps_next"] = wraps
        return decision

    def on_depart(self, router, header: Header, out_port: int,
                  out_vc: int) -> None:
        super().on_depart(router, header, out_port, out_vc)
        if header.fields.pop("_wraps_next", False):
            header.fields["torus_vc"] = 1
        # entering a new dimension resets the dateline class
        if out_port in (NORTH, SOUTH) and header.fields.get("_dim") == "x":
            header.fields["torus_vc"] = 0
        header.fields["_dim"] = "x" if out_port in (EAST, WEST) else "y"

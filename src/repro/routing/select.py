"""Pluggable output-selection policies (the load-balancing axis).

The paper's common structure (Section 2.2) ends with an *ordered*
candidate list: fault knowledge restricts the usable outputs, the
deadlock rules restrict them further, and an adaptivity criterion
orders what remains.  The adaptivity command bits deliberately leave
the *choice* among legal outputs open — this module makes that choice
a first-class, swappable policy instead of a fixed preference order,
mirroring the ECMP -> flowlet-switching progression of datacenter
load balancing.

A :class:`SelectionPolicy` re-orders the legal candidate list an
algorithm produced; it never adds or removes candidates, so every
route a policy picks is one the algorithm certified as fault-legal
and deadlock-free.  The allocation stage still walks the list in
order and takes the first candidate with a free output VC, so the
policy expresses a *preference*, with the rest of the legal set as
fallback.

Policies:

``deterministic``
    The identity: keep the algorithm's own adaptivity order (the seed
    behaviour, bit-identical — networks skip the hook entirely).
``ecmp``
    A seeded hash of (src, dst, msg-id) rotates the candidate list —
    per-message multipath spreading, stable for a message's lifetime.
``flowlet``
    Per-flow (src, dst) hash reuse: consecutive messages of a flow
    follow the same preference until the flow has been idle longer
    than ``gap`` cycles, then the flow re-hashes onto a fresh
    candidate — flowlet switching on idle gaps.
``credit``
    Pick the candidate whose downstream buffer currently advertises
    the most credits (ties broken deterministically by (port, vc)) —
    congestion-aware greedy spreading.

All policies are deterministic functions of (seed, message/flow
identity, candidate list, network state), so any run is reproducible
from its :meth:`~repro.experiments.runners.WorkloadSpec.spec_key` and
seed.  Only ``deterministic`` is eligible for the batched engine: the
others would invalidate its decision cache's replay of candidate
orderings, so :func:`repro.sim.batched.build_network` declines them
with an explicit ``batched_fallback_reason``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.flit import Header
    from ..sim.router import Router

Candidate = "tuple[int, int]"


def _mix(seed: int, *vals: int) -> int:
    """Small deterministic integer hash (xorshift-style avalanche).

    Python's builtin ``hash`` is salted per process for str/bytes and
    identity-shaped for small ints; this mix is stable across
    processes and Python versions, which the content-addressed sweep
    cache and the reproducibility tests rely on."""
    h = (seed ^ 0x9E3779B9) & 0xFFFFFFFF
    for v in vals:
        h ^= ((v & 0xFFFFFFFF) + 0x9E3779B9 + ((h << 6) & 0xFFFFFFFF)
              + (h >> 2)) & 0xFFFFFFFF
        h &= 0xFFFFFFFF
        h ^= h >> 16
        h = (h * 0x85EBCA6B) & 0xFFFFFFFF
        h ^= h >> 13
    return h


class SelectionPolicy:
    """Base class: re-order a legal candidate list.

    ``select`` receives the router making the decision, the worm's
    header, and the algorithm-ordered candidate list; it returns a
    permutation of that list (never a different set).  The network
    calls it for fresh decisions *and* for the per-cycle refreshes of
    blocked adaptive heads, so a policy that must keep a worm's choice
    stable has to derive it from message/flow identity, not from call
    order."""

    #: registry identifier
    name: str = "base"
    #: True only for the identity policy: the batched engine's decision
    #: cache replays candidate orderings, so anything else must fall
    #: back to the object engine
    batched_compatible: bool = False

    def __init__(self, seed: int = 0):
        self.seed = int(seed)

    def reset(self, network) -> None:
        """Drop per-run state (called when a network adopts the
        policy)."""

    def select(self, router: "Router", header: "Header",
               candidates: "list[tuple[int, int]]"
               ) -> "list[tuple[int, int]]":
        raise NotImplementedError

    def describe(self) -> str:
        return f"{self.name} (seed {self.seed})"


class DeterministicPolicy(SelectionPolicy):
    """The seed behaviour: keep the algorithm's adaptivity order.

    Networks treat this policy as "no policy" and skip the selection
    hook entirely, so the default stays bit-identical to the
    pre-policy code path (pinned digests hold)."""

    name = "deterministic"
    batched_compatible = True

    def select(self, router, header, candidates):
        return candidates


class EcmpPolicy(SelectionPolicy):
    """Seeded hash of (src, dst, msg-id) over the candidates.

    The hash rotates the candidate list, so the picked candidate leads
    and the algorithm's order is preserved cyclically behind it as the
    blocked-fallback sequence.  Keying on the message id gives
    per-message (packet-level) spraying: maximal spreading, no flow
    affinity."""

    name = "ecmp"

    def select(self, router, header, candidates):
        n = len(candidates)
        if n < 2:
            return candidates
        i = _mix(self.seed, header.src, header.dst, header.msg_id) % n
        return candidates[i:] + candidates[:i]


class FlowletPolicy(SelectionPolicy):
    """Per-flow hash reuse until an idle gap exceeds ``gap`` cycles.

    A flow is (src, dst).  While a flow keeps deciding (any of its
    worms routing or refreshing anywhere in the fabric), its salt — and
    therefore its hash rotation — stays fixed, so in-order bursts share
    a path.  Once the flow has been idle for more than ``gap`` cycles,
    the next decision re-hashes with a bumped salt and the flowlet may
    move to a different legal candidate."""

    name = "flowlet"

    def __init__(self, seed: int = 0, gap: int = 32):
        super().__init__(seed)
        if gap < 1:
            raise ValueError("flowlet gap must be >= 1 cycle")
        self.gap = int(gap)
        # (src, dst) -> [last_decision_cycle, salt]
        self._flows: dict[tuple[int, int], list[int]] = {}

    def reset(self, network) -> None:
        self._flows.clear()

    def select(self, router, header, candidates):
        cycle = router.network.cycle
        key = (header.src, header.dst)
        rec = self._flows.get(key)
        if rec is None:
            rec = [cycle, 0]
            self._flows[key] = rec
        elif cycle - rec[0] > self.gap:
            rec[1] += 1
        rec[0] = cycle
        n = len(candidates)
        if n < 2:
            return candidates
        i = _mix(self.seed, header.src, header.dst, rec[1]) % n
        return candidates[i:] + candidates[:i]


class CreditPolicy(SelectionPolicy):
    """Most downstream credits first, deterministic tie-break.

    Credits are the free slots of the downstream buffer a candidate
    output VC feeds (:meth:`repro.sim.router.Router.credits`) — the
    most direct congestion signal the router has.  Ties fall back to
    the (port, vc) order, so equal-credit states are decided
    identically on every run."""

    name = "credit"

    def select(self, router, header, candidates):
        if len(candidates) < 2:
            return candidates
        credits = router.credits
        return sorted(candidates,
                      key=lambda pv: (-credits(pv[0], pv[1]),
                                      pv[0], pv[1]))


POLICIES: dict[str, type[SelectionPolicy]] = {
    "deterministic": DeterministicPolicy,
    "ecmp": EcmpPolicy,
    "flowlet": FlowletPolicy,
    "credit": CreditPolicy,
}


def make_policy(name: str, seed: int = 0, **kwargs) -> SelectionPolicy:
    """Instantiate a registered selection policy.

    ``kwargs`` forward to the policy constructor (``gap=`` for
    ``flowlet``)."""
    try:
        factory = POLICIES[name]
    except KeyError:
        raise ValueError(f"unknown selection policy {name!r}; choose "
                         f"from {sorted(POLICIES)}") from None
    return factory(seed=seed, **kwargs)

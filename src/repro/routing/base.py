"""Routing algorithm interface.

The paper describes a common structure for fault-tolerant routing
algorithms (Section 2.2): fault knowledge restricts usable outgoing
links (set 1); destination/source plus deadlock rules yield a set of
deadlock-free outputs (set 2); the intersection, ordered by an
adaptivity criterion, gives the candidates the router tries.

``RoutingAlgorithm.route`` returns exactly that: an ordered candidate
list of (port, virtual channel) pairs, or a delivery decision, plus the
number of rule-interpretation steps the decision cost — the quantity
the paper's Section 5 reports (NAFTA 1..3 steps, ROUTE_C always 2).

Algorithms keep their distributed per-node state (NAFTA's dead-end
states, ROUTE_C's unsafe states) in ``node_states`` and refresh it in
``on_fault_update`` — the diagnosis phase of assumption iv.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..sim.flit import Header
from ..sim.topology import Topology

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.network import Network, Router


@dataclass
class RouteDecision:
    """Outcome of one routing decision."""

    deliver: bool = False
    candidates: list[tuple[int, int]] = field(default_factory=list)
    steps: int = 1            # rule-interpretation steps consumed
    stuck: bool = False       # no legal output exists, now or ever
    #                           (a Condition-3 violation; the network
    #                           drops the message and counts it)

    @classmethod
    def delivery(cls, steps: int = 1) -> "RouteDecision":
        return cls(deliver=True, steps=steps)

    @classmethod
    def unroutable(cls, steps: int = 1) -> "RouteDecision":
        return cls(stuck=True, steps=steps)


class RoutingError(Exception):
    """A routing algorithm met a situation it cannot handle (e.g. its
    topology requirements are violated, or a message has no legal
    output and never will)."""


class RoutingAlgorithm:
    """Base class for all routing algorithms."""

    #: human-readable identifier used by the registry and reports
    name: str = "base"
    #: virtual channels per physical link the scheme requires
    n_vcs: int = 1
    #: True if the algorithm handles faults (otherwise it is an "nft"
    #: algorithm in the paper's terminology)
    fault_tolerant: bool = False
    #: True if ``route`` consults dynamic network state (loads, queue
    #: occupancy), so a blocked head's candidate list must be refreshed
    #: every cycle.  Deterministic schemes (the decision depends only on
    #: source/destination and the fault knowledge) set this False and
    #: are re-routed only when the fault knowledge changes (the
    #: network's ``route_epoch`` advances).
    adaptive: bool = True

    # -- lifecycle -------------------------------------------------------

    def check_topology(self, topology: Topology) -> None:
        """Raise RoutingError if the topology is unsupported.  The paper
        notes the topology 'is a property of the routing algorithm and
        not an input to it'."""

    def reset(self, network: "Network") -> None:
        """(Re)build per-node state at simulation start."""

    def on_fault_update(self, network: "Network",
                        nodes: list[int] | None = None) -> None:
        """Diagnosis phase: recompute distributed fault knowledge after
        the fault set changed.

        With instant diagnosis this runs atomically (assumption iv) and
        ``nodes`` is None — every node's knowledge changed at once.
        With the hop-by-hop diagnosis protocol
        (``SimConfig.diagnosis_hop_delay``) it runs when a notification
        flood *converges* and ``nodes`` lists the node ids the flood
        reached — the nodes whose local view
        (``network.fault_view(node)``) changed.  Algorithms may use it
        to scope partial recomputation; recomputing everything from
        ``network.known_faults`` stays correct, since the converged
        views and the known set agree."""

    # -- the decision ------------------------------------------------------

    def route(self, router: "Router", header: Header,
              in_port: int, in_vc: int) -> RouteDecision:
        raise NotImplementedError

    def accepts(self, src: int, dst: int) -> bool:
        """May a message from src to dst enter the network?  Fault-
        tolerant schemes refuse blocked sources/destinations (their
        convex completion may exclude healthy nodes — the Condition-3
        concession the paper discusses)."""
        return True

    def on_depart(self, router: "Router", header: Header,
                  out_port: int, out_vc: int) -> None:
        """Header bookkeeping when the head actually leaves (path-length
        counter, misrouted mark, phase changes)."""
        header.bump_path_len()

    # -- introspection -----------------------------------------------------

    def decision_steps_range(self) -> tuple[int, int]:
        """(best, worst) interpretation steps per routing decision; the
        paper's Section 5 time-overhead numbers."""
        return (1, 1)

    def describe(self) -> str:
        lo, hi = self.decision_steps_range()
        ft = "fault-tolerant" if self.fault_tolerant else "non-fault-tolerant"
        return (f"{self.name}: {ft}, {self.n_vcs} VCs, "
                f"{lo}-{hi} interpretation steps per decision")


def order_by_adaptivity(candidates: list[tuple[int, int]],
                        router: "Router") -> list[tuple[int, int]]:
    """Default adaptivity criterion: prefer the output with the least
    data still assigned to it (the NAFTA criterion — the amount of data
    that still has to pass a node, approximated by downstream queue
    occupancy plus committed worm remainders)."""
    if len(candidates) < 2:
        return candidates
    return sorted(candidates,
                  key=lambda pv: (router.output_load(pv[0]), pv[0], pv[1]))

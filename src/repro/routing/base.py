"""Routing algorithm interface.

The paper describes a common structure for fault-tolerant routing
algorithms (Section 2.2): fault knowledge restricts usable outgoing
links (set 1); destination/source plus deadlock rules yield a set of
deadlock-free outputs (set 2); the intersection, ordered by an
adaptivity criterion, gives the candidates the router tries.

``RoutingAlgorithm.route`` returns exactly that: an ordered candidate
list of (port, virtual channel) pairs, or a delivery decision, plus the
number of rule-interpretation steps the decision cost — the quantity
the paper's Section 5 reports (NAFTA 1..3 steps, ROUTE_C always 2).

Algorithms keep their distributed per-node state (NAFTA's dead-end
states, ROUTE_C's unsafe states) in ``node_states`` and refresh it in
``on_fault_update`` — the diagnosis phase of assumption iv.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..sim.flit import Header
from ..sim.topology import Topology

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.network import Network, Router


#: refresh hints: what re-routing a *blocked* head would do while the
#: route epoch and the header fields are unchanged.  REROUTE (the safe
#: default) re-enters ``route``; RESORT promises the same candidate set
#: re-sorted by (output_load, port, vc); STATIC promises the identical
#: decision.  The object engine ignores the hint (it always re-routes);
#: the batched engine uses it to refresh blocked worms in its arrays.
REFRESH_REROUTE = 0
REFRESH_RESORT = 1
REFRESH_STATIC = 2


@dataclass
class RouteDecision:
    """Outcome of one routing decision."""

    deliver: bool = False
    candidates: list[tuple[int, int]] = field(default_factory=list)
    steps: int = 1            # rule-interpretation steps consumed
    stuck: bool = False       # no legal output exists, now or ever
    #                           (a Condition-3 violation; the network
    #                           drops the message and counts it)
    refresh_hint: int = REFRESH_REROUTE  # see the module constants

    @classmethod
    def delivery(cls, steps: int = 1) -> "RouteDecision":
        return cls(deliver=True, steps=steps)

    @classmethod
    def unroutable(cls, steps: int = 1) -> "RouteDecision":
        return cls(stuck=True, steps=steps)


class RoutingError(Exception):
    """A routing algorithm met a situation it cannot handle (e.g. its
    topology requirements are violated, or a message has no legal
    output and never will)."""


class RoutingAlgorithm:
    """Base class for all routing algorithms."""

    #: human-readable identifier used by the registry and reports
    name: str = "base"
    #: virtual channels per physical link the scheme requires
    n_vcs: int = 1
    #: True if the algorithm handles faults (otherwise it is an "nft"
    #: algorithm in the paper's terminology)
    fault_tolerant: bool = False
    #: True if ``route`` consults dynamic network state (loads, queue
    #: occupancy), so a blocked head's candidate list must be refreshed
    #: every cycle.  Deterministic schemes (the decision depends only on
    #: source/destination and the fault knowledge) set this False and
    #: are re-routed only when the fault knowledge changes (the
    #: network's ``route_epoch`` advances).
    adaptive: bool = True
    #: header fields ``route`` may write (used by the batched engine's
    #: decision cache to record and replay the side effects of a cached
    #: decision; irrelevant unless ``route_cache_key`` is implemented)
    cache_mutable_fields: tuple[str, ...] = ()
    #: Native-cache descriptor for the batched engine (None = every
    #: fresh decision enters Python).  A tuple of at most 5 header
    #: field names covering BOTH every field ``route`` reads and every
    #: field it writes — a superset of ``cache_mutable_fields``.
    #: Declaring it asserts that, while the fault knowledge stands, the
    #: decision (including its ``steps`` and field writes) is a pure
    #: function of (node, dst, in_port, in_vc, these field values, and
    #: whether ``path_len`` exceeds ``native_livelock_limit``) up to
    #: the load re-ordering a ``REFRESH_RESORT`` hint declares, and
    #: that ``on_depart`` does nothing beyond the base path-length bump
    #: plus the optional ``native_term_rule``.  Values must be small
    #: ints, bools or None.  REROUTE-hinted decisions are never cached,
    #: so exceptional branches (unroutable, one-way switches) always
    #: re-enter Python.
    native_fields: "tuple[str, ...] | None" = None
    #: optional ``(flag_field, vn_field, {vn: port})`` commit rule the
    #: batched engine applies natively on head departure:
    #: ``flag_field := True`` when the worm departs through the port
    #: the map assigns to its current ``vn_field`` value (the terminal-
    #: run commitment of the turn-model algorithms)
    native_term_rule: "tuple[str, str, dict] | None" = None
    #: set False when ``route`` provably never consults in_port / in_vc
    #: (shrinks the native key space, so the cache converges faster);
    #: leave True whenever in doubt — a finer key is always correct
    native_key_uses_port: bool = True
    native_key_uses_vc: bool = True
    #: opt-in for the batched engine's build-time clean table
    #: (:mod:`repro.routing.clean_table`): asserts that while the known
    #: fault set is EMPTY, the decision is a pure function of
    #: (sign dx, sign dy, the ``vn`` field, the optional ``term``
    #: field) — translation-invariant on the 2-D mesh, with every other
    #: native field absent.  The builder still probe-verifies the claim
    #: at build time and falls back entry-by-entry when a probe
    #: disagrees; the table is bypassed entirely the moment a fault
    #: becomes known.
    native_clean_table: bool = False

    # -- lifecycle -------------------------------------------------------

    def check_topology(self, topology: Topology) -> None:
        """Raise RoutingError if the topology is unsupported.  The paper
        notes the topology 'is a property of the routing algorithm and
        not an input to it'."""

    def reset(self, network: "Network") -> None:
        """(Re)build per-node state at simulation start."""

    def on_fault_update(self, network: "Network",
                        nodes: list[int] | None = None) -> None:
        """Diagnosis phase: recompute distributed fault knowledge after
        the fault set changed.

        With instant diagnosis this runs atomically (assumption iv) and
        ``nodes`` is None — every node's knowledge changed at once.
        With the hop-by-hop diagnosis protocol
        (``SimConfig.diagnosis_hop_delay``) it runs when a notification
        flood *converges* and ``nodes`` lists the node ids the flood
        reached — the nodes whose local view
        (``network.fault_view(node)``) changed.  Algorithms may use it
        to scope partial recomputation; recomputing everything from
        ``network.known_faults`` stays correct, since the converged
        views and the known set agree."""

    # -- the decision ------------------------------------------------------

    def route(self, router: "Router", header: Header,
              in_port: int, in_vc: int) -> RouteDecision:
        raise NotImplementedError

    def route_cache_key(self, node: int, header: Header,
                        in_port: int, in_vc: int) -> "tuple | None":
        """Memoization key for ``route``, or None if uncacheable.

        Two calls with equal keys must return the same decision (up to
        the load re-ordering a ``REFRESH_RESORT`` hint declares) and
        perform the same writes to the ``cache_mutable_fields`` of the
        header — *while the network's fault knowledge stands*; the
        batched engine drops its cache whenever ``route_epoch``
        advances.  The key must therefore cover every dynamic input of
        the decision except output loads: typically (node, dst,
        in_port, and the header fields the algorithm branches on).
        The object engine never consults this."""
        return None

    def native_livelock_limit(self, topology: Topology) -> "int | None":
        """Path-length threshold the decision branches on (the livelock
        guard feeding the ``over`` component of the native cache key);
        None when the algorithm never consults the counter."""
        return None

    def accepts(self, src: int, dst: int) -> bool:
        """May a message from src to dst enter the network?  Fault-
        tolerant schemes refuse blocked sources/destinations (their
        convex completion may exclude healthy nodes — the Condition-3
        concession the paper discusses)."""
        return True

    def on_depart(self, router: "Router", header: Header,
                  out_port: int, out_vc: int) -> None:
        """Header bookkeeping when the head actually leaves (path-length
        counter, misrouted mark, phase changes)."""
        header.bump_path_len()

    # -- introspection -----------------------------------------------------

    def decision_steps_range(self) -> tuple[int, int]:
        """(best, worst) interpretation steps per routing decision; the
        paper's Section 5 time-overhead numbers."""
        return (1, 1)

    def describe(self) -> str:
        lo, hi = self.decision_steps_range()
        ft = "fault-tolerant" if self.fault_tolerant else "non-fault-tolerant"
        return (f"{self.name}: {ft}, {self.n_vcs} VCs, "
                f"{lo}-{hi} interpretation steps per decision")


def order_by_adaptivity(candidates: list[tuple[int, int]],
                        router: "Router") -> list[tuple[int, int]]:
    """Default adaptivity criterion: prefer the output with the least
    data still assigned to it (the NAFTA criterion — the amount of data
    that still has to pass a node, approximated by downstream queue
    occupancy plus committed worm remainders)."""
    if len(candidates) < 2:
        return candidates
    return sorted(candidates,
                  key=lambda pv: (router.output_load(pv[0]), pv[0], pv[1]))

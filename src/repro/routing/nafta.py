"""NAFTA: fault-tolerant adaptive routing on 2-D meshes.

Reconstruction of NAFTA [CuA95] from this paper's description (see
DESIGN.md Section 3): NARA's two turn-model virtual networks plus a
wave-propagated fault-knowledge layer (:mod:`.mesh_state`):

* fault regions are completed to rectangles; deactivated healthy nodes
  are excluded from routing (the paper's Condition-3 concession);
* a message blocked on its minimal paths detours non-minimally *within
  its virtual network* — the turn model is deadlock-free for
  non-minimal routing too, so no extra virtual channels are needed
  (NAFTA keeps NARA's two);
* the terminal run of the turn model (north in VC0, south in VC1) is
  entered only when the node's clear-run counter proves the column is
  usable all the way to the destination row, after which the message is
  committed to that direction;
* misrouted messages are marked in the header and carry a path-length
  counter, the livelock guard of the paper's Section 3; when the
  counter overflows (or no legal output exists) the message is declared
  unroutable and counted — these are exactly the "awkward fault
  situations" where NAFTA's constant-memory approximation violates
  Condition 3.

Interpretation steps (paper Section 5: NAFTA needs 1 in the fault-free
case and up to 3 in the worst case): 1 when no fault knowledge is
consulted, 2 when fault states restrict the minimal set, 3 when the
exception path (detour search / terminal-run checks) runs.
"""

from __future__ import annotations

from ..sim.flit import Header
from ..sim.topology import (EAST, NORTH, SOUTH, WEST, Mesh2D, Torus2D,
                            Topology)
from .base import (REFRESH_RESORT, REFRESH_STATIC, RouteDecision,
                   RoutingAlgorithm, RoutingError)
from .mesh_state import MeshFaultMap
from .nara import VN_FREE, VN_TERMINAL

OPPOSITE = {EAST: WEST, WEST: EAST, NORTH: SOUTH, SOUTH: NORTH}

#: pseudo in_port meaning "no u-turn restriction applies" (used right
#: after a virtual-network switch, where the arrival channel belongs to
#: the other network's class)
LOCAL_NONE = -99


class NaftaRouting(RoutingAlgorithm):
    name = "nafta"
    n_vcs = 2
    fault_tolerant = True
    cache_mutable_fields = ("vn", "term", "sdir", "misrouted")
    # everything route() branches on beyond geometry/arrival port and
    # the epoch-static fault knowledge: the four mutable fields plus the
    # livelock-overflow flag (native_livelock_limit below); on_depart is
    # exactly the base path-length bump plus the terminal-commit rule
    native_fields = ("vn", "term", "sdir", "misrouted")
    native_term_rule = ("term", "vn", VN_TERMINAL)
    native_key_uses_vc = False         # in_vc is never consulted
    # fault-free, route() reduces to NARA (minimal set + terminal run,
    # u-turn filter never binds, clear runs span whole columns), so the
    # decision depends only on (sign dx, sign dy, vn, term)
    native_clean_table = True

    def __init__(self, livelock_factor: int = 4):
        self.livelock_factor = livelock_factor
        self.fault_map: MeshFaultMap | None = None

    # -- lifecycle ----------------------------------------------------

    def check_topology(self, topology: Topology) -> None:
        if not isinstance(topology, Mesh2D) or isinstance(topology, Torus2D):
            raise RoutingError("NAFTA runs on 2-D meshes")

    def reset(self, network) -> None:
        # distributed knowledge builds on the *known* fault set (which
        # lags ground truth when a detection delay is configured)
        self.fault_map = MeshFaultMap(network.topology,
                                      network.known_faults)

    def on_fault_update(self, network, nodes=None) -> None:
        assert self.fault_map is not None
        self.fault_map.recompute()

    def accepts(self, src: int, dst: int) -> bool:
        assert self.fault_map is not None
        return not (self.fault_map.blocked(src) or self.fault_map.blocked(dst))

    # -- helpers --------------------------------------------------------

    def _livelock_limit(self, topo: Mesh2D) -> int:
        return self.livelock_factor * (topo.width + topo.height) + 16

    def native_livelock_limit(self, topology) -> int:
        return self._livelock_limit(topology)

    def _assign_vn(self, router, header: Header) -> int:
        topo: Mesh2D = router.topology
        fmap = self.fault_map
        assert fmap is not None
        x, y = topo.coords(router.node)
        dx, dy = topo.coords(header.dst)
        if dy > y:
            return 1
        if dy < y:
            return 0
        # Row message: NARA's rule (VC0) when the network is healthy —
        # keeping NAFTA's fault-free behaviour identical to NARA, the
        # paper's definition of the nft variant.  With faults present,
        # pick the network whose detour side looks more open at the
        # source (local constant knowledge only).
        if fmap.faults.n_faults() == 0:
            return 0
        if fmap.clear_run(router.node, NORTH) > fmap.clear_run(router.node,
                                                               SOUTH):
            return 1
        return 0

    def _usable(self, node: int, port: int) -> bool:
        assert self.fault_map is not None
        return self.fault_map.usable_link(node, port)

    # -- the decision -----------------------------------------------------------

    def route(self, router, header: Header, in_port: int,
              in_vc: int) -> RouteDecision:
        if router.node == header.dst:
            return RouteDecision(deliver=True, steps=1,
                                 refresh_hint=REFRESH_STATIC)
        topo: Mesh2D = router.topology
        fmap = self.fault_map
        assert fmap is not None

        if header.path_len > self._livelock_limit(topo):
            return RouteDecision.unroutable(steps=3)
        if fmap.blocked(header.dst):
            # destination was deactivated by a later fault
            return RouteDecision.unroutable(steps=2)

        vn = header.fields.get("vn")
        if vn is None:
            vn = self._assign_vn(router, header)
            header.fields["vn"] = vn
        free = VN_FREE[vn]
        term = VN_TERMINAL[vn]

        x, y = topo.coords(router.node)
        dx, dy = topo.coords(header.dst)

        # Committed terminal run: the turn model forbids leaving it.
        if header.fields.get("term"):
            if self._usable(router.node, term):
                return RouteDecision(candidates=[(term, vn)], steps=1,
                                     refresh_hint=REFRESH_STATIC)
            return RouteDecision.unroutable(steps=3)

        fault_free = fmap.faults.n_faults() == 0
        minimal = topo.minimal_ports(router.node, header.dst)
        # Never u-turn, not even minimally: after a detour the minimal
        # set may point straight back out the arrival port, and a
        # 180-degree turn is outside the turn model (it creates
        # two-channel cycles).
        candidates = [(p, vn) for p in minimal
                      if p in free and p != in_port
                      and self._usable(router.node, p)]
        steps = 1 if fault_free else 2

        # Terminal-direction minimal move (destination lies in the
        # terminal direction): allowed only from the destination column
        # with a proven clear run.
        if term in minimal and x == dx and term != in_port:
            hops = abs(dy - y)
            if fmap.run_reaches(router.node, term, hops):
                candidates.append((term, vn))
                if not fault_free:
                    steps = max(steps, 2)

        if candidates:
            restricted = len(candidates) < len(minimal)
            if restricted and not fault_free:
                steps = 3 if term in minimal else 2
            # the set is fixed by geometry + epoch-static fault knowledge
            # while the head waits; only the load ordering is dynamic
            return RouteDecision(
                candidates=self._order(candidates, router), steps=steps,
                refresh_hint=REFRESH_RESORT)

        # Exception path: no minimal output — detour within the free
        # move set (turn-model non-minimal routing, deadlock-free).
        header.mark_misrouted()
        detour = self._detour_candidates(router, header, vn, free, term,
                                         in_port)
        if detour:
            # statically ranked (sticky sdir is its own first entry, so
            # re-running reproduces the identical list)
            return RouteDecision(candidates=detour, steps=3,
                                 refresh_hint=REFRESH_STATIC)

        # Last escape: a south-last (VC1) message with no legal move
        # switches to the north-last network (VC0) once and for all.
        # The switch is one-way, so the cross edges VC1 -> VC0 cannot
        # close a cycle in the channel dependency graph (verified by
        # the CDG tests in tests/analysis).  VC0 messages in the same
        # situation are declared unroutable — the constant-knowledge
        # concession of Condition 3.
        if vn == 1:
            header.fields["vn"] = 0
            header.fields.pop("sdir", None)
            free0 = VN_FREE[0]
            term0 = VN_TERMINAL[0]
            switched = [(p, 0) for p in topo.minimal_ports(router.node,
                                                           header.dst)
                        if p in free0 and self._usable(router.node, p)]
            if term0 in topo.minimal_ports(router.node, header.dst) \
                    and x == dx \
                    and fmap.run_reaches(router.node, term0, abs(dy - y)):
                switched.append((term0, 0))
            if not switched:
                # after a network switch the arrival port belongs to the
                # old network's channel class, so a reversal is safe
                switched = self._detour_candidates(router, header, 0,
                                                   free0, term0,
                                                   in_port=LOCAL_NONE)
            if switched:
                return RouteDecision(
                    candidates=self._order(switched, router), steps=3)
        return RouteDecision.unroutable(steps=3)

    def route_cache_key(self, node, header, in_port, in_vc):
        # Everything route() branches on besides the (epoch-static)
        # fault knowledge: geometry, arrival port, the committed
        # virtual network / terminal run, the sticky detour direction,
        # and whether the livelock counter has overflowed.  in_vc is
        # never consulted.  (The vn-switch branch returns a
        # REFRESH_REROUTE decision, which the cache refuses to store.)
        f = header.fields
        topo = self.fault_map.topology if self.fault_map else None
        over = (topo is not None
                and header.path_len > self._livelock_limit(topo))
        return (node, header.dst, in_port, f.get("vn"),
                bool(f.get("term")), f.get("sdir"), over)

    def _detour_candidates(self, router, header: Header, vn: int,
                           free: tuple[int, ...], term: int,
                           in_port: int) -> list[tuple[int, int]]:
        """Non-minimal moves, best first.  Never u-turn; keep a sticky
        search direction so block perimeters are followed instead of
        ping-ponged."""
        topo: Mesh2D = router.topology
        fmap = self.fault_map
        assert fmap is not None
        x, y = topo.coords(router.node)
        dx, dy = topo.coords(header.dst)
        minimal = set(topo.minimal_ports(router.node, header.dst))
        usable = [p for p in free if self._usable(router.node, p)]
        # Never u-turn (a 180-degree turn is outside the turn model's
        # proof and immediately creates two-cycle deadlocks): exclude
        # the port the head arrived through, even as a last resort.
        if in_port in usable:
            usable.remove(in_port)
        if not usable:
            return []

        # Sticky search direction: once a detour picks a direction,
        # keep following it along the block perimeter instead of
        # oscillating between two neighbours.
        sdir = header.fields.get("sdir")
        if sdir not in usable:
            sdir = None

        blocked_axis_x = bool(minimal & {EAST, WEST})
        blocked_axis_y = bool(minimal & {NORTH, SOUTH})

        def rank(port: int) -> tuple:
            # Perpendicular escape first: if eastward progress is what
            # is blocked, going around the block means leaving the row.
            perpendicular = ((port in (NORTH, SOUTH) and blocked_axis_x
                              and not blocked_axis_y)
                             or (port in (EAST, WEST) and blocked_axis_y
                                 and not blocked_axis_x))
            toward_dst = ((port == EAST and dx > x) or (port == WEST and dx < x)
                          or (port == NORTH and dy > y)
                          or (port == SOUTH and dy < y))
            return (
                0 if port == sdir else 1,
                0 if perpendicular else 1,
                0 if toward_dst else 1,
                -fmap.clear_run(router.node, port),
                port,
            )

        ordered = sorted(usable, key=rank)
        header.fields["sdir"] = ordered[0]
        return [(p, vn) for p in ordered]

    @staticmethod
    def _order(candidates, router):
        return sorted(candidates,
                      key=lambda pv: (router.output_load(pv[0]), pv[0]))

    # -- header bookkeeping --------------------------------------------------------

    def on_depart(self, router, header: Header, out_port: int,
                  out_vc: int) -> None:
        super().on_depart(router, header, out_port, out_vc)
        vn = header.fields.get("vn")
        if vn is not None and out_port == VN_TERMINAL[vn]:
            header.fields["term"] = True

    def decision_steps_range(self) -> tuple[int, int]:
        return (1, 3)

"""LFA-style fast reroute: armed backup subbases around a live algorithm.

:class:`FastReroute` wraps any fault-tolerant routing algorithm with
the precompiled backup next-hop table of
:mod:`repro.core.compiler.backup`.  The wrapper is transparent while no
local link fault is *armed*: every call delegates to the inner
algorithm.  When the network confirms a link fault at its endpoints
(``Network._confirm_fault``), it arms that link here, and fresh
injections at the endpoints are dispatched straight from the backup
subbase — the faulted-configuration decision the compiler probed and
verified at build time — without waiting for the notification flood.
When the flood converges and the inner algorithm's distributed state
is recomputed, the network disarms the link and the wrapper goes
transparent again (the DBR-style hand-off from fast local recovery to
slow-path reconfiguration).

Substitution is deliberately narrow, because the backup entries were
probed at the *injection* state and certified by the shadow
configuration's channel-dependency analysis:

* only at the local in-port (``in_port == LOCAL``) — mid-flight worms
  are handled by the network's heal/absorb machinery, which re-injects
  them locally and thereby funnels them through this same certified
  state;
* only for headers whose fields are injection-equivalent — accounting
  keys and per-decision scratch (leading underscore) only.  A worm
  carrying committed routing state (updown's one-way phase, a turn
  model's terminal flag) must not be re-based onto an injection-state
  rule, as the combination could close a channel-dependency cycle the
  build-time analysis never saw;
* only through backup candidates whose port is currently alive — a
  fault on the backup link itself falls through to the inner algorithm
  and the slow path.
"""

from __future__ import annotations

import copy
import json

from ..core.compiler.backup import BackupTable, build_backup_table_for
from ..sim.router import LOCAL
from ..sim.topology import link_key
from .base import RouteDecision, RoutingAlgorithm

#: header fields that carry accounting, not routing state — a header
#: whose fields are a subset of these (plus ``_``-prefixed per-decision
#: scratch, which every ``route()`` call recomputes) is
#: injection-equivalent, so the injection-state backup entry applies
NEUTRAL_FIELDS = frozenset({
    "root_id", "retry_of", "attempt", "first_dropped", "orig_created",
    "healed_from", "local_retries", "stuck", "trace", "path_len",
    "misrouted",
})

#: in-process table memo: campaigns build hundreds of networks over the
#: same (algorithm, topology) pair and must not re-probe every time
_TABLE_MEMO: dict = {}


def _memo_key(inner, topology) -> tuple:
    # scalar constructor/instance state distinguishes same-name
    # algorithms parameterized differently (updown roots, nafta qmax)
    sig = tuple(sorted(
        (k, v) for k, v in vars(inner).items()
        if isinstance(v, (int, float, str, bool, type(None)))))
    topo = json.dumps(topology.describe(), sort_keys=True)
    return (inner.name, inner.n_vcs, sig, topo)


class FastReroute(RoutingAlgorithm):
    """Backup-aware dispatch wrapper; see the module docstring."""

    def __init__(self, inner: RoutingAlgorithm, topology,
                 table: BackupTable | None = None,
                 verify_deadlock: int = 4):
        self.inner = inner            # first: __getattr__ delegates here
        if not inner.fault_tolerant:
            raise ValueError(
                f"FastReroute needs a fault-tolerant inner algorithm, "
                f"got {inner.name!r}")
        self.name = inner.name + "+frr"
        self.n_vcs = inner.n_vcs
        self.fault_tolerant = True
        self.adaptive = inner.adaptive
        #: canonical keys of links whose backup subbase is active
        self.armed: set[tuple[int, int]] = set()
        if table is None:
            key = _memo_key(inner, topology)
            table = _TABLE_MEMO.get(key)
            if table is None:
                table = build_backup_table_for(
                    topology, inner, verify_deadlock=verify_deadlock)
                _TABLE_MEMO[key] = table
        self.table = table

    # -- activation (driven by Network fault handling) ---------------------

    def arm(self, link) -> None:
        self.armed.add(link_key(*link))

    def disarm(self, link) -> None:
        self.armed.discard(link_key(*link))

    # -- RoutingAlgorithm surface ------------------------------------------

    def route(self, router, header, in_port: int,
              in_vc: int) -> RouteDecision:
        if self.armed and in_port == LOCAL and router.node != header.dst \
                and all(k in NEUTRAL_FIELDS or k.startswith("_")
                        for k in header.fields):
            node = router.node
            for link in sorted(self.armed):
                if node != link[0] and node != link[1]:
                    continue
                entry = self.table.lookup(node, link, header.dst)
                if entry is None:
                    continue
                cands, delta = entry
                alive = [(p, v) for p, v in cands if router.port_alive(p)]
                if not alive:
                    continue    # fault on the backup itself: slow path
                for k in [k for k in header.fields if k.startswith("_")]:
                    del header.fields[k]
                for k, v in delta.items():
                    header.fields[k] = copy.deepcopy(v)
                rr = getattr(router.network.stats, "reroute", None)
                if rr is not None:
                    rr["backup_route_decisions"] += 1
                return RouteDecision(candidates=alive, steps=1)
        return self.inner.route(router, header, in_port, in_vc)

    def check_topology(self, topology) -> None:
        self.inner.check_topology(topology)

    def reset(self, network) -> None:
        self.armed.clear()
        self.inner.reset(network)

    def on_fault_update(self, network, nodes=None) -> None:
        self.inner.on_fault_update(network, nodes=nodes)

    def accepts(self, src: int, dst: int) -> bool:
        return self.inner.accepts(src, dst)

    def on_depart(self, router, header, out_port: int,
                  out_vc: int) -> None:
        self.inner.on_depart(router, header, out_port, out_vc)

    def decision_steps_range(self) -> tuple[int, int]:
        lo, hi = self.inner.decision_steps_range()
        return (min(lo, 1), hi)

    def __getattr__(self, item):
        return getattr(self.inner, item)

"""Routing algorithms: the paper's NAFTA/NARA and ROUTE_C (plus its
stripped nft variant), oblivious baselines, and the spanning-tree
baseline of Section 2.1."""

from .backup import FastReroute, NEUTRAL_FIELDS
from .base import RouteDecision, RoutingAlgorithm, RoutingError
from .dimension_order import ECubeRouting, TorusDatelineXY, XYRouting
from .duato import DuatoMeshRouting
from .karyn import KAryNCubeDOR
from .mesh_state import MeshFaultMap, MeshNodeState
from .nafta import NaftaRouting
from .nara import NaraRouting, assign_virtual_network
from .planar_adaptive import PlanarAdaptiveRouting
from .registry import ALGORITHMS, make_algorithm
from .route_c import (CubeStateMap, RouteCRouting, StrippedRouteC,
                      FAULTY, LFAULT, OUNSAFE, SAFE, SUNSAFE)
from .rule_driven import RuleDrivenNafta, RuleDrivenRouteC
from .select import (POLICIES, SelectionPolicy, DeterministicPolicy,
                     EcmpPolicy, FlowletPolicy, CreditPolicy, make_policy)
from .spanning_tree import SpanningTreeRouting
from .updown import UpDownRouting

__all__ = [
    "FastReroute", "NEUTRAL_FIELDS",
    "RouteDecision", "RoutingAlgorithm", "RoutingError",
    "ECubeRouting", "TorusDatelineXY", "XYRouting", "DuatoMeshRouting",
    "KAryNCubeDOR",
    "MeshFaultMap", "MeshNodeState", "NaftaRouting", "NaraRouting",
    "PlanarAdaptiveRouting",
    "assign_virtual_network", "ALGORITHMS", "make_algorithm",
    "CubeStateMap", "RouteCRouting", "StrippedRouteC",
    "FAULTY", "LFAULT", "OUNSAFE", "SAFE", "SUNSAFE",
    "SpanningTreeRouting", "UpDownRouting", "RuleDrivenNafta", "RuleDrivenRouteC",
    "POLICIES", "SelectionPolicy", "DeterministicPolicy", "EcmpPolicy",
    "FlowletPolicy", "CreditPolicy", "make_policy",
]
